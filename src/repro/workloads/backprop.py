"""BP — perceptron (back-propagation) training (Rodinia backprop).

One forward and one backward pass of a two-layer perceptron over a batch of
input vectors.  The input activations, both weight matrices, the target
vector and the two bias vectors form the six approximable regions (#AR = 6);
the error metric is the mean relative error of the updated input-to-hidden
weights (the kernel's main output).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import mean_relative_error_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import correlated_series, quantize_varying


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def backprop_step(
    inputs: np.ndarray,
    weights_ih: np.ndarray,
    weights_ho: np.ndarray,
    bias_h: np.ndarray,
    bias_o: np.ndarray,
    target: np.ndarray,
    learning_rate: float = 0.3,
    momentum: float = 0.3,
) -> tuple[np.ndarray, np.ndarray]:
    """One batched forward + backward pass; returns the updated weights."""
    inputs = np.asarray(inputs, dtype=np.float64)
    weights_ih = np.asarray(weights_ih, dtype=np.float64)
    weights_ho = np.asarray(weights_ho, dtype=np.float64)
    bias_h = np.asarray(bias_h, dtype=np.float64)
    bias_o = np.asarray(bias_o, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)

    hidden = _sigmoid(inputs @ weights_ih + bias_h)
    output = _sigmoid(hidden @ weights_ho + bias_o)

    delta_o = (target - output) * output * (1.0 - output)
    delta_h = hidden * (1.0 - hidden) * (delta_o @ weights_ho.T)

    grad_ho = hidden.T @ delta_o / inputs.shape[0]
    grad_ih = inputs.T @ delta_h / inputs.shape[0]

    new_ho = weights_ho + learning_rate * grad_ho + momentum * grad_ho
    new_ih = weights_ih + learning_rate * grad_ih + momentum * grad_ih
    return new_ih.astype(np.float32), new_ho.astype(np.float32)


class BackpropWorkload(Workload):
    """BP: one training step of a two-layer perceptron."""

    name = "BP"
    description = "Perceptron train."
    input_description = "64 K elements"
    error_metric = "MRE"
    approx_region_count = 6
    ops_per_byte = 3.2

    #: paper-scale number of input units
    FULL_INPUT_UNITS = 65536
    #: hidden and output layer widths of the Rodinia benchmark
    HIDDEN_UNITS = 16
    OUTPUT_UNITS = 1
    #: batch size (rows of the activation matrix)
    BATCH = 64

    def generate(self) -> dict[str, Region]:
        input_units = self.scaled(self.FULL_INPUT_UNITS, minimum=512)
        # Activations and weights carry limited precision, matching the
        # normalized sensor inputs of the Rodinia run.
        inputs = quantize_varying(
            correlated_series(
                self.rng, self.BATCH * input_units, correlation=0.98, scale=0.5, offset=0.5
            ),
            self.rng, 10, 18,
        ).reshape(self.BATCH, input_units)
        weights_ih = quantize_varying(
            correlated_series(
                self.rng, input_units * self.HIDDEN_UNITS, correlation=0.95, scale=0.2
            ),
            self.rng, 10, 18,
        ).reshape(input_units, self.HIDDEN_UNITS)
        weights_ho = correlated_series(
            self.rng, self.HIDDEN_UNITS * self.OUTPUT_UNITS, correlation=0.5, scale=0.2
        ).reshape(self.HIDDEN_UNITS, self.OUTPUT_UNITS)
        bias_h = correlated_series(self.rng, self.HIDDEN_UNITS, correlation=0.5, scale=0.1)
        bias_o = correlated_series(self.rng, self.OUTPUT_UNITS, correlation=0.5, scale=0.1)
        target = correlated_series(
            self.rng, self.BATCH * self.OUTPUT_UNITS, correlation=0.7, scale=0.3, offset=0.5
        ).reshape(self.BATCH, self.OUTPUT_UNITS)
        return {
            "inputs": Region("inputs", inputs, approximable=True, read_passes=2),
            "weights_ih": Region("weights_ih", weights_ih, approximable=True, read_passes=2),
            "weights_ho": Region("weights_ho", weights_ho, approximable=True, read_passes=2),
            "bias_h": Region("bias_h", bias_h, approximable=True),
            "bias_o": Region("bias_o", bias_o, approximable=True),
            "target": Region("target", target, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        new_ih, new_ho = backprop_step(
            arrays["inputs"],
            arrays["weights_ih"],
            arrays["weights_ho"],
            arrays["bias_h"],
            arrays["bias_o"],
            arrays["target"],
        )
        # The benchmark's observable output is the network's prediction after
        # the training step; the error metric is evaluated on it (evaluating
        # MRE on the raw near-zero weights would overstate tiny absolute
        # perturbations).
        hidden = _sigmoid(arrays["inputs"].astype(np.float64) @ new_ih + arrays["bias_h"])
        prediction = _sigmoid(hidden @ new_ho + arrays["bias_o"])
        return WorkloadOutput(
            arrays={
                "weights_ih_updated": new_ih,
                "weights_ho_updated": new_ho,
                "prediction": prediction.astype(np.float32),
            }
        )

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return mean_relative_error_percent(exact["prediction"], approx["prediction"])
