"""SRAD1 / SRAD2 — speckle-reducing anisotropic diffusion (Rodinia srad).

SRAD denoises ultrasound-style images in two kernels per iteration:

* **SRAD1** computes the four directional derivatives and the diffusion
  coefficient of every pixel;
* **SRAD2** computes the divergence of the coefficient-weighted derivatives
  and updates the image.

The paper treats the two kernels as separate benchmarks with 8 and 6
approximable regions respectively; both use the image-difference metric.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import image_diff_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import quantize_varying, smooth_image


def _neighbors(image: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """North/south/west/east differences with clamped (replicated) borders."""
    north = np.roll(image, 1, axis=0)
    north[0, :] = image[0, :]
    south = np.roll(image, -1, axis=0)
    south[-1, :] = image[-1, :]
    west = np.roll(image, 1, axis=1)
    west[:, 0] = image[:, 0]
    east = np.roll(image, -1, axis=1)
    east[:, -1] = image[:, -1]
    return north - image, south - image, west - image, east - image


def srad_coefficients(
    image: np.ndarray, q0_squared: float = 0.05
) -> dict[str, np.ndarray]:
    """SRAD kernel 1: directional derivatives and diffusion coefficient."""
    image = np.asarray(image, dtype=np.float64)
    image = np.maximum(image, 1e-6)
    d_n, d_s, d_w, d_e = _neighbors(image)
    gradient_sq = (d_n**2 + d_s**2 + d_w**2 + d_e**2) / (image**2)
    laplacian = (d_n + d_s + d_w + d_e) / image
    num = 0.5 * gradient_sq - (1.0 / 16.0) * laplacian**2
    den = (1.0 + 0.25 * laplacian) ** 2
    q_squared = num / np.maximum(den, 1e-9)
    coefficient = 1.0 / (1.0 + (q_squared - q0_squared) / (q0_squared * (1.0 + q0_squared)))
    coefficient = np.clip(coefficient, 0.0, 1.0)
    return {
        "coefficient": coefficient.astype(np.float32),
        "d_n": d_n.astype(np.float32),
        "d_s": d_s.astype(np.float32),
        "d_w": d_w.astype(np.float32),
        "d_e": d_e.astype(np.float32),
    }


def srad_update(
    image: np.ndarray,
    coefficient: np.ndarray,
    d_n: np.ndarray,
    d_s: np.ndarray,
    d_w: np.ndarray,
    d_e: np.ndarray,
    step: float = 0.1,
) -> np.ndarray:
    """SRAD kernel 2: divergence of the weighted derivatives + image update."""
    coefficient = np.asarray(coefficient, dtype=np.float64)
    c_south = np.roll(coefficient, -1, axis=0)
    c_south[-1, :] = coefficient[-1, :]
    c_east = np.roll(coefficient, -1, axis=1)
    c_east[:, -1] = coefficient[:, -1]
    divergence = (
        coefficient * np.asarray(d_n, dtype=np.float64)
        + c_south * np.asarray(d_s, dtype=np.float64)
        + coefficient * np.asarray(d_w, dtype=np.float64)
        + c_east * np.asarray(d_e, dtype=np.float64)
    )
    updated = np.asarray(image, dtype=np.float64) + 0.25 * step * divergence
    return updated.astype(np.float32)


class SRAD1Workload(Workload):
    """SRAD1: derivative and diffusion-coefficient kernel."""

    name = "SRAD1"
    description = "Anisotropic diff."
    input_description = "1024×1024 img."
    error_metric = "Image diff."
    approx_region_count = 8
    ops_per_byte = 2.6

    FULL_DIM = 1024

    def generate(self) -> dict[str, Region]:
        dim = self.scaled_dim(self.FULL_DIM, minimum=64)
        # An ultrasound image with spatially varying detail promoted to float32.
        image = quantize_varying(
            smooth_image(self.rng, dim, dim, amplitude=80.0, offset=120.0, noise=3.0),
            self.rng, 2, 10,
        )
        # The Rodinia kernel reads the image (twice: once for the gradients,
        # once for the normalization statistics) and the boundary index
        # arrays; the coefficient and derivative arrays it writes become the
        # output regions.  Together these are the paper's 8 approximable
        # regions.
        regions = {"image": Region("image", image, approximable=True, read_passes=2)}
        index_n = np.arange(dim, dtype=np.int32)
        index_s = np.arange(dim, dtype=np.int32)
        regions["index_n"] = Region("index_n", index_n, approximable=True)
        regions["index_s"] = Region("index_s", index_s, approximable=True)
        return regions

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        results = srad_coefficients(arrays["image"])
        return WorkloadOutput(arrays={name: value for name, value in results.items()})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return image_diff_percent(exact["coefficient"], approx["coefficient"])


class SRAD2Workload(Workload):
    """SRAD2: divergence and image-update kernel."""

    name = "SRAD2"
    description = "Anisotropic diff."
    input_description = "1024×1024 img."
    error_metric = "Image diff."
    approx_region_count = 6
    ops_per_byte = 2.2

    FULL_DIM = 1024

    def generate(self) -> dict[str, Region]:
        dim = self.scaled_dim(self.FULL_DIM, minimum=64)
        image = quantize_varying(
            smooth_image(self.rng, dim, dim, amplitude=80.0, offset=120.0, noise=3.0),
            self.rng, 0, 7,
        )
        first_kernel = srad_coefficients(image.astype(np.float64))
        # The coefficient and derivative fields carry limited precision too.
        first_kernel = {
            name: quantize_varying(value, self.rng, 10, 18)
            for name, value in first_kernel.items()
        }
        return {
            "image": Region("image", image, approximable=True),
            "coefficient": Region(
                "coefficient", first_kernel["coefficient"], approximable=True, read_passes=2
            ),
            "d_n": Region("d_n", first_kernel["d_n"], approximable=True),
            "d_s": Region("d_s", first_kernel["d_s"], approximable=True),
            "d_w": Region("d_w", first_kernel["d_w"], approximable=True),
            "d_e": Region("d_e", first_kernel["d_e"], approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        updated = srad_update(
            arrays["image"],
            arrays["coefficient"],
            arrays["d_n"],
            arrays["d_s"],
            arrays["d_w"],
            arrays["d_e"],
        )
        return WorkloadOutput(arrays={"updated_image": updated})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return image_diff_percent(exact["updated_image"], approx["updated_image"])
