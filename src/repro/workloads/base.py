"""Workload interface shared by all nine benchmarks."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace
from repro.utils.blocks import DEFAULT_BLOCK_SIZE


@dataclass
class Region:
    """One memory allocation of a workload.

    Attributes:
        name: region name (unique within the workload).
        array: the data stored in the region.
        approximable: the paper's ``safeToApprox`` flag from the extended
            ``cudaMalloc`` — only blocks of approximable regions may take the
            lossy path.
        is_output: whether the region is written (rather than read) by the
            kernel.
        read_passes: how many times the kernel streams through the region.
        stride: block-level access stride (1 = sequential streaming).
    """

    name: str
    array: np.ndarray
    approximable: bool = False
    is_output: bool = False
    read_passes: int = 1
    stride: int = 1

    @property
    def size_bytes(self) -> int:
        """Size of the allocation in bytes."""
        return int(self.array.nbytes)

    def num_blocks(self, block_size_bytes: int = DEFAULT_BLOCK_SIZE) -> int:
        """Number of blocks the allocation spans (last block zero-padded)."""
        return max(1, -(-self.size_bytes // block_size_bytes))


@dataclass
class WorkloadOutput:
    """Outputs of one kernel execution, keyed by output-region name."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def names(self) -> list[str]:
        """Names of the produced outputs."""
        return list(self.arrays)


class Workload(ABC):
    """Base class for the paper's benchmarks.

    Subclasses define data generation, the kernel, the error metric and the
    DRAM traffic pattern; the GPU simulator consumes all four.

    Args:
        scale: linear scaling factor on the paper's input size.  The default
            of 1/256 keeps trace-driven simulation fast enough for tests while
            preserving the data-value distributions; pass ``1.0`` to match the
            input sizes of Table III.
        seed: RNG seed for data generation (results are deterministic).
    """

    #: short name used in the paper's figures (JM, BS, DCT, ...)
    name: str = "workload"
    #: one-line description (the "Short Description" column of Table III)
    description: str = ""
    #: the "Input" column of Table III (at scale = 1.0)
    input_description: str = ""
    #: the "Error Metric" column of Table III
    error_metric: str = "MRE"
    #: the "#AR" column of Table III (number of approximable memory regions)
    approx_region_count: int = 0
    #: average scalar operations executed per byte of DRAM-resident data;
    #: used by the timing model (all nine benchmarks are memory bound, i.e.
    #: this stays below the GPU's compute/bandwidth balance point)
    ops_per_byte: float = 4.0

    def __init__(self, scale: float = 1.0 / 256.0, seed: int = 2019) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # to be provided by each benchmark

    @abstractmethod
    def generate(self) -> dict[str, Region]:
        """Create the input regions (deterministic given the seed)."""

    @abstractmethod
    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        """Execute the kernel on the given input arrays."""

    @abstractmethod
    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        """Application-specific error in percent (Table III metric)."""

    # ------------------------------------------------------------------ #
    # defaults shared by the benchmarks

    def scaled(self, full_size: int, minimum: int = 64) -> int:
        """Scale an element count from the paper's input size."""
        return max(minimum, int(round(full_size * self.scale)))

    def scaled_dim(self, full_dim: int, minimum: int = 16) -> int:
        """Scale one dimension of a 2-D input (area scales with ``scale``)."""
        return max(minimum, int(round(full_dim * float(np.sqrt(self.scale)))))

    def input_arrays(self, regions: dict[str, Region]) -> dict[str, np.ndarray]:
        """Convenience: region name → array for all input regions."""
        return {
            name: region.array for name, region in regions.items() if not region.is_output
        }

    def output_regions(self, outputs: WorkloadOutput) -> dict[str, Region]:
        """Wrap kernel outputs into (non-approximable) output regions."""
        return {
            name: Region(name=name, array=array, approximable=False, is_output=True)
            for name, array in outputs.arrays.items()
        }

    def trace(
        self,
        regions: dict[str, Region],
        block_size_bytes: int = DEFAULT_BLOCK_SIZE,
    ) -> MemoryTrace:
        """Block-granular DRAM traffic of the kernel.

        The default trace streams every input region ``read_passes`` times at
        its declared stride and writes every output region once — the pattern
        of the streaming, memory-bound kernels in Table III.  Benchmarks with
        more structured reuse override this.
        """
        trace = MemoryTrace()
        for region in regions.values():
            blocks = region.num_blocks(block_size_bytes)
            if region.is_output:
                trace.add_stream(region.name, blocks, AccessType.WRITE)
            else:
                trace.add_stream(
                    region.name,
                    blocks,
                    AccessType.READ,
                    passes=region.read_passes,
                    stride=region.stride,
                )
        return trace

    def compute_ops(self, regions: dict[str, Region]) -> float:
        """Total scalar operations of the kernel (for the timing model)."""
        total_bytes = sum(region.size_bytes for region in regions.values())
        return self.ops_per_byte * total_bytes

    def table3_row(self) -> tuple[str, str, str, str, int]:
        """This benchmark's row of Table III."""
        return (
            self.name,
            self.description,
            self.input_description,
            self.error_metric,
            self.approx_region_count,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scale={self.scale}, seed={self.seed})"
