"""DNNACT — DNN activation / motion-residual tensors (learned-codec family).

The second workload family beyond the paper: the tensor traffic of a video
DNN in the spirit of learned codecs — a ReLU-sparse activation tensor with
per-channel scales (the post-convolution feature maps a GPU streams to and
from DRAM) and a stack of motion-residual frames (small-magnitude,
zero-centred differences between consecutive frames).  Both distributions
are what make DNN traffic compressible: ReLU zeros and narrow per-channel
value ranges in the activations, near-zero clustering in the residuals.

The kernel computes per-channel pooling statistics (global average / max
pool) and per-frame motion energy; the application error is the paper's
MRE over those reductions.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import mean_relative_error_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import quantize_pow2, smooth_image


class DNNActivationWorkload(Workload):
    """Pooling statistics over ReLU activations and motion residuals."""

    name = "DNNACT"
    description = "DNN activation + motion-residual pooling statistics"
    input_description = "256x448x448 ReLU activations + 32 residual frames"
    error_metric = "MRE"
    approx_region_count = 2
    ops_per_byte = 2.0

    #: tensor extents at scale = 1.0 — a batched mid-network layer of a
    #: video DNN (the 56 px feature maps tiled over an 8x8 spatial batch),
    #: sized like the paper workloads so ``scale`` has room to act
    FULL_CHANNELS = 256
    FULL_DIM = 448
    FULL_FRAMES = 32

    def __init__(
        self,
        scale: float = 1.0 / 256.0,
        seed: int = 2019,
        sparsity_bias: float = 0.6,
        channel_sigma: float = 0.5,
    ) -> None:
        """Args beyond the base class:

        sparsity_bias: pre-activation offset in units of the channel scale;
            larger values push more elements below zero, i.e. more ReLU
            zeros (0.6 gives the ~60-70 % sparsity typical of trained
            CNNs).
        channel_sigma: sigma of the log-normal per-channel scale spread.
        """
        super().__init__(scale=scale, seed=seed)
        if sparsity_bias < 0:
            raise ValueError("sparsity_bias must be non-negative")
        if channel_sigma < 0:
            raise ValueError("channel_sigma must be non-negative")
        self.sparsity_bias = sparsity_bias
        self.channel_sigma = channel_sigma

    def generate(self) -> dict[str, Region]:
        channels = self.scaled(self.FULL_CHANNELS, minimum=8)
        frames = self.scaled(self.FULL_FRAMES, minimum=2)
        dim = self.scaled_dim(self.FULL_DIM)

        # Per-channel scales are log-normal (trained batch-norm statistics);
        # each channel is a smooth feature map shifted below zero so ReLU
        # zeroes the typical majority of elements.
        scales = np.exp(self.rng.normal(0.0, self.channel_sigma, size=channels))
        activations = np.empty((channels, dim, dim), dtype=np.float64)
        for channel in range(channels):
            feature = smooth_image(
                self.rng, dim, dim,
                amplitude=1.0, offset=0.0, noise=0.1,
                min_wavelength_px=4.0, max_wavelength_px=float(max(8, dim)),
            ).astype(np.float64)
            activations[channel] = scales[channel] * (
                feature - self.sparsity_bias
            )
        activations = np.maximum(activations, 0.0)
        # Activations are quantized (int8-like training / storage precision
        # promoted to float); residuals are small zero-centred frame diffs.
        activations = quantize_pow2(activations, 6)

        frame_stack = [
            smooth_image(
                self.rng, dim, dim,
                amplitude=64.0, offset=0.0, noise=0.5,
                min_wavelength_px=8.0, max_wavelength_px=float(max(16, dim)),
            ).astype(np.float64)
            for _ in range(frames + 1)
        ]
        residuals = np.stack(
            [after - before for before, after in zip(frame_stack, frame_stack[1:])]
        )
        residuals = quantize_pow2(0.1 * residuals, 8)
        return {
            "activations": Region(
                name="activations", array=activations, approximable=True
            ),
            "residuals": Region(
                name="residuals", array=residuals, approximable=True
            ),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        activations = np.asarray(arrays["activations"], dtype=np.float64)
        residuals = np.asarray(arrays["residuals"], dtype=np.float64)
        pooled = np.stack(
            [activations.mean(axis=(1, 2)), activations.max(axis=(1, 2))], axis=1
        )
        motion_energy = np.sqrt(np.mean(residuals**2, axis=(1, 2)))
        return WorkloadOutput(
            arrays={
                "pooled": pooled.astype(np.float32),
                "motion_energy": motion_energy.astype(np.float32),
            }
        )

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        errors = [
            mean_relative_error_percent(exact[name], approx[name])
            for name in exact.names()
        ]
        return float(np.mean(errors))
