"""DCT — blockwise 8×8 discrete cosine transform (CUDA SDK).

Applies the type-II DCT to every 8×8 tile of an input image, the core of
JPEG-style encoders.  The input image (and the constant cosine basis) are the
two approximable regions (#AR = 2); the error metric is the image difference
between the images reconstructed from exact and approximated coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import image_diff_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import quantize_varying, smooth_image

TILE = 8


def dct_basis(size: int = TILE) -> np.ndarray:
    """Orthonormal type-II DCT basis matrix of the given size."""
    if size <= 0:
        raise ValueError("size must be positive")
    k = np.arange(size)[:, None]
    n = np.arange(size)[None, :]
    basis = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    basis *= np.sqrt(2.0 / size)
    return basis.astype(np.float32)


def blockwise_dct(image: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """2-D DCT applied independently to every ``TILE``×``TILE`` tile."""
    image = np.asarray(image, dtype=np.float64)
    basis = np.asarray(basis, dtype=np.float64)
    tile = basis.shape[0]
    height, width = image.shape
    if height % tile or width % tile:
        raise ValueError(f"image dimensions must be multiples of {tile}")
    tiles = image.reshape(height // tile, tile, width // tile, tile).transpose(0, 2, 1, 3)
    coefficients = np.einsum("ij,abjk,lk->abil", basis, tiles, basis)
    out = coefficients.transpose(0, 2, 1, 3).reshape(height, width)
    return out.astype(np.float32)


def blockwise_idct(coefficients: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blockwise_dct` (used by the error metric)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    basis = np.asarray(basis, dtype=np.float64)
    tile = basis.shape[0]
    height, width = coefficients.shape
    tiles = coefficients.reshape(
        height // tile, tile, width // tile, tile
    ).transpose(0, 2, 1, 3)
    image = np.einsum("ji,abjk,kl->abil", basis, tiles, basis)
    out = image.transpose(0, 2, 1, 3).reshape(height, width)
    return out.astype(np.float32)


class DCTWorkload(Workload):
    """DCT: blockwise discrete cosine transform of an image."""

    name = "DCT"
    description = "Discrete trans."
    input_description = "1024×1024 img."
    error_metric = "Image diff."
    approx_region_count = 2
    ops_per_byte = 2.8

    #: paper-scale image dimension
    FULL_DIM = 1024

    def generate(self) -> dict[str, Region]:
        dim = self.scaled_dim(self.FULL_DIM, minimum=64)
        dim -= dim % TILE
        # A photograph with spatially varying detail promoted to float32,
        # as the CUDA SDK sample does.
        image = quantize_varying(smooth_image(self.rng, dim, dim, noise=2.0), self.rng, 0, 8)
        basis = dct_basis()
        return {
            "image": Region("image", image, approximable=True),
            "dct_basis": Region("dct_basis", basis, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        coefficients = blockwise_dct(arrays["image"], arrays["dct_basis"])
        return WorkloadOutput(arrays={"coefficients": coefficients})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        basis = dct_basis()
        exact_image = blockwise_idct(exact["coefficients"], basis)
        approx_image = blockwise_idct(approx["coefficients"], basis)
        return image_diff_percent(exact_image, approx_image)
