"""NN — nearest neighbours over geographic records (Rodinia nn).

Computes the Euclidean distance from a query point to every record
(latitude/longitude pair) and returns the distances of the k closest records.
The record array and the distance scratch array are the two approximable
regions (#AR = 2); the error metric is the MRE of the reported k-nearest
distances.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import mean_relative_error_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import quantize_varying, spatial_points


def nearest_neighbors(
    records: np.ndarray, query: tuple[float, float], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Distances and indices of the ``k`` records closest to ``query``."""
    records = np.asarray(records, dtype=np.float64)
    if records.ndim != 2 or records.shape[1] != 2:
        raise ValueError("records must have shape (n, 2)")
    if not 1 <= k <= records.shape[0]:
        raise ValueError("k must lie between 1 and the number of records")
    deltas = records - np.asarray(query, dtype=np.float64)
    distances = np.sqrt(np.sum(deltas**2, axis=1))
    order = np.argsort(distances, kind="stable")[:k]
    return distances[order].astype(np.float32), order.astype(np.int64)


class NearestNeighborWorkload(Workload):
    """NN: k-nearest-neighbour search over clustered geographic records."""

    name = "NN"
    description = "Nearest neighbors"
    input_description = "20 M records"
    error_metric = "MRE"
    approx_region_count = 2
    ops_per_byte = 1.6

    #: paper-scale record count
    FULL_RECORDS = 20_000_000
    #: number of neighbours reported by the Rodinia benchmark
    K = 10
    #: fixed query point (roughly the centre of the synthetic record clusters)
    QUERY = (37.5, -95.0)

    def generate(self) -> dict[str, Region]:
        records = self.scaled(self.FULL_RECORDS, minimum=4096)
        # GPS-style coordinates whose precision varies from source to source.
        locations = quantize_varying(spatial_points(self.rng, records), self.rng, 7, 15)
        # The Rodinia kernel writes per-record distances to a scratch buffer
        # which the host then scans; that buffer is the second approximable
        # region.  Its initial contents are zeros.
        scratch = np.zeros(records, dtype=np.float32)
        return {
            "records": Region("records", locations, approximable=True),
            "distance_scratch": Region("distance_scratch", scratch, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        distances, indices = nearest_neighbors(arrays["records"], self.QUERY, self.K)
        return WorkloadOutput(
            arrays={"knn_distances": distances, "knn_indices": indices}
        )

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return mean_relative_error_percent(
            exact["knn_distances"], approx["knn_distances"]
        )
