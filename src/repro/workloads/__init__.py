"""The paper's nine benchmarks (Table III) plus extended workload families.

Each workload is a NumPy re-implementation of the corresponding CUDA kernel
(AxBench / CUDA SDK / Rodinia), together with:

* synthetic-but-realistic input data generation (the value distributions are
  what drives compressibility),
* the set of memory regions it allocates, with the safe-to-approximate
  annotation the paper expresses through its extended ``cudaMalloc`` (the
  ``#AR`` column of Table III),
* a block-granular memory trace approximating the kernel's DRAM traffic,
* the kernel itself, re-runnable on degraded inputs, and
* the application-specific error metric of Table III.
"""

from repro.workloads.backprop import BackpropWorkload
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.blackscholes import BlackScholesWorkload
from repro.workloads.dct import DCTWorkload
from repro.workloads.dnnact import DNNActivationWorkload
from repro.workloads.fwt import FastWalshTransformWorkload
from repro.workloads.jmeint import JMeintWorkload
from repro.workloads.nn import NearestNeighborWorkload
from repro.workloads.registry import (
    EXTENDED_WORKLOAD_ORDER,
    PAPER_WORKLOAD_ORDER,
    available_workloads,
    get_workload,
    register_workload,
    table3_rows,
    unregister_workload,
    workload_family,
)
from repro.workloads.srad import SRAD1Workload, SRAD2Workload
from repro.workloads.traceio import (
    TraceBundle,
    TraceWorkload,
    capture_trace,
    load_trace,
    register_trace,
    save_trace,
)
from repro.workloads.transpose import TransposeWorkload
from repro.workloads.weather import WeatherWorkload

__all__ = [
    "Workload",
    "Region",
    "WorkloadOutput",
    "JMeintWorkload",
    "BlackScholesWorkload",
    "DCTWorkload",
    "FastWalshTransformWorkload",
    "TransposeWorkload",
    "BackpropWorkload",
    "NearestNeighborWorkload",
    "SRAD1Workload",
    "SRAD2Workload",
    "WeatherWorkload",
    "DNNActivationWorkload",
    "TraceBundle",
    "TraceWorkload",
    "capture_trace",
    "save_trace",
    "load_trace",
    "register_trace",
    "available_workloads",
    "get_workload",
    "register_workload",
    "unregister_workload",
    "workload_family",
    "table3_rows",
    "PAPER_WORKLOAD_ORDER",
    "EXTENDED_WORKLOAD_ORDER",
]
