"""Registry of the nine benchmarks in the order the paper plots them."""

from __future__ import annotations

from typing import Callable

from repro.workloads.backprop import BackpropWorkload
from repro.workloads.base import Workload
from repro.workloads.blackscholes import BlackScholesWorkload
from repro.workloads.dct import DCTWorkload
from repro.workloads.fwt import FastWalshTransformWorkload
from repro.workloads.jmeint import JMeintWorkload
from repro.workloads.nn import NearestNeighborWorkload
from repro.workloads.srad import SRAD1Workload, SRAD2Workload
from repro.workloads.transpose import TransposeWorkload

#: x-axis order of every figure in the paper
PAPER_WORKLOAD_ORDER = ("JM", "BS", "DCT", "FWT", "TP", "BP", "NN", "SRAD1", "SRAD2")

_REGISTRY: dict[str, Callable[..., Workload]] = {
    "JM": JMeintWorkload,
    "BS": BlackScholesWorkload,
    "DCT": DCTWorkload,
    "FWT": FastWalshTransformWorkload,
    "TP": TransposeWorkload,
    "BP": BackpropWorkload,
    "NN": NearestNeighborWorkload,
    "SRAD1": SRAD1Workload,
    "SRAD2": SRAD2Workload,
}


def available_workloads() -> list[str]:
    """Names of all benchmarks, in the paper's plotting order."""
    return list(PAPER_WORKLOAD_ORDER)


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a benchmark by its short name (case-insensitive).

    Args:
        name: one of :func:`available_workloads`.
        **kwargs: forwarded to the workload constructor (``scale``, ``seed``).
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return _REGISTRY[key](**kwargs)


def table3_rows(scale: float | None = None) -> list[tuple[str, str, str, str, int]]:
    """Rows of Table III (name, description, input, error metric, #AR)."""
    rows = []
    for name in PAPER_WORKLOAD_ORDER:
        workload = _REGISTRY[name]() if scale is None else _REGISTRY[name](scale=scale)
        rows.append(workload.table3_row())
    return rows
