"""Workload registry: the nine paper benchmarks plus extended families.

The paper's nine kernels register first, in the order every figure plots
them (:data:`PAPER_WORKLOAD_ORDER`); the extended families (scientific
fields, DNN tensors) follow (:data:`EXTENDED_WORKLOAD_ORDER`).  User code
adds its own workloads — including ingested traces — through the same
:func:`register_workload` plugin hook, which rejects duplicate names the
way the compression-scheme registry does.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.backprop import BackpropWorkload
from repro.workloads.base import Workload
from repro.workloads.blackscholes import BlackScholesWorkload
from repro.workloads.dct import DCTWorkload
from repro.workloads.dnnact import DNNActivationWorkload
from repro.workloads.fwt import FastWalshTransformWorkload
from repro.workloads.jmeint import JMeintWorkload
from repro.workloads.nn import NearestNeighborWorkload
from repro.workloads.srad import SRAD1Workload, SRAD2Workload
from repro.workloads.transpose import TransposeWorkload
from repro.workloads.weather import WeatherWorkload

#: x-axis order of every figure in the paper
PAPER_WORKLOAD_ORDER = ("JM", "BS", "DCT", "FWT", "TP", "BP", "NN", "SRAD1", "SRAD2")

#: the extended families beyond the paper, in registration order
EXTENDED_WORKLOAD_ORDER = ("WEATHER", "DNNACT")

_REGISTRY: dict[str, Callable[..., Workload]] = {}
_FAMILIES: dict[str, str] = {}


def register_workload(
    name: str, factory: Callable[..., Workload], family: str = "user"
) -> Callable[..., Workload]:
    """Register a workload factory under ``name`` (case-insensitive).

    The plugin hook every family uses — the nine paper benchmarks, the
    extended families and user workloads all register the same way, so
    studies and campaign validation treat them uniformly.  ``factory`` is
    typically a :class:`Workload` subclass; any callable accepting the
    constructor keywords (``scale``, ``seed``) works.

    Raises:
        ValueError: if ``name`` is already registered (like the
            compression-scheme registry, duplicates are a programming
            error, not a silent override).
    """
    key = name.upper()
    if key in _REGISTRY:
        raise ValueError(
            f"workload {name!r} is already registered (as {_REGISTRY[key]!r})"
        )
    _REGISTRY[key] = factory
    _FAMILIES[key] = family
    return factory


def unregister_workload(name: str) -> None:
    """Remove a registered workload (tests and ad-hoc trace ingestion)."""
    key = name.upper()
    if key in PAPER_WORKLOAD_ORDER or key in EXTENDED_WORKLOAD_ORDER:
        raise ValueError(f"built-in workload {name!r} cannot be unregistered")
    _REGISTRY.pop(key, None)
    _FAMILIES.pop(key, None)


for _name, _factory in {
    "JM": JMeintWorkload,
    "BS": BlackScholesWorkload,
    "DCT": DCTWorkload,
    "FWT": FastWalshTransformWorkload,
    "TP": TransposeWorkload,
    "BP": BackpropWorkload,
    "NN": NearestNeighborWorkload,
    "SRAD1": SRAD1Workload,
    "SRAD2": SRAD2Workload,
}.items():
    register_workload(_name, _factory, family="paper")
register_workload("WEATHER", WeatherWorkload, family="science")
register_workload("DNNACT", DNNActivationWorkload, family="dnn")


def available_workloads() -> list[str]:
    """All registered workload names: paper order first, then extensions."""
    return list(_REGISTRY)


def workload_family(name: str) -> str:
    """Family tag of a registered workload (``paper``/``science``/``dnn``/...)."""
    key = name.upper()
    if key not in _FAMILIES:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return _FAMILIES[key]


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a benchmark by its short name (case-insensitive).

    Args:
        name: one of :func:`available_workloads`.
        **kwargs: forwarded to the workload constructor (``scale``, ``seed``).
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return _REGISTRY[key](**kwargs)


def table3_rows(scale: float | None = None) -> list[tuple[str, str, str, str, int]]:
    """Rows of Table III (name, description, input, error metric, #AR).

    The paper's nine rows come first; the extended families append their
    rows in registration order, so the table doubles as the registry
    listing.
    """
    rows = []
    for name in (*PAPER_WORKLOAD_ORDER, *EXTENDED_WORKLOAD_ORDER):
        workload = _REGISTRY[name]() if scale is None else _REGISTRY[name](scale=scale)
        rows.append(workload.table3_row())
    return rows
