"""BS — Black-Scholes European option pricing (CUDA SDK).

Prices a portfolio of European call and put options from per-option stock
price, strike, time-to-expiry and volatility arrays.  The four input arrays
are the benchmark's four approximable regions (#AR = 4); the error metric is
the mean relative error of the computed prices.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import mean_relative_error_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import clustered_values, quantize_varying


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via the error-function identity."""
    from math import sqrt

    try:
        from scipy.special import erf
    except ImportError:  # pragma: no cover - scipy is an install requirement
        erf = np.vectorize(__import__("math").erf)
    return 0.5 * (1.0 + erf(x / sqrt(2.0)))


def black_scholes(
    stock: np.ndarray,
    strike: np.ndarray,
    expiry: np.ndarray,
    volatility: np.ndarray,
    risk_free_rate: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Black-Scholes call and put prices."""
    stock = np.asarray(stock, dtype=np.float64)
    strike = np.asarray(strike, dtype=np.float64)
    expiry = np.maximum(np.asarray(expiry, dtype=np.float64), 1e-4)
    volatility = np.maximum(np.asarray(volatility, dtype=np.float64), 1e-4)

    sqrt_t = np.sqrt(expiry)
    d1 = (
        np.log(np.maximum(stock, 1e-6) / np.maximum(strike, 1e-6))
        + (risk_free_rate + 0.5 * volatility**2) * expiry
    ) / (volatility * sqrt_t)
    d2 = d1 - volatility * sqrt_t
    discount = np.exp(-risk_free_rate * expiry)
    call = stock * _norm_cdf(d1) - strike * discount * _norm_cdf(d2)
    put = strike * discount * _norm_cdf(-d2) - stock * _norm_cdf(-d1)
    return call.astype(np.float32), put.astype(np.float32)


class BlackScholesWorkload(Workload):
    """BS: European option pricing over a portfolio of options."""

    name = "BS"
    description = "Options pricing"
    input_description = "4 M options"
    error_metric = "MRE"
    approx_region_count = 4
    ops_per_byte = 3.0

    #: paper-scale option count
    FULL_OPTIONS = 4_000_000
    #: risk-free rate used for every option
    RISK_FREE_RATE = 0.02

    def generate(self) -> dict[str, Region]:
        options = self.scaled(self.FULL_OPTIONS, minimum=1024)
        # Market data carries limited precision (sub-cent price ticks and
        # quantized expiries/volatilities).
        stock = quantize_varying(
            clustered_values(self.rng, options, centers=(20.0, 40.0, 60.0, 90.0), runs=32),
            self.rng, 8, 16,
        )
        strike = quantize_varying(
            clustered_values(self.rng, options, centers=(25.0, 45.0, 65.0, 85.0), runs=32),
            self.rng, 8, 16,
        )
        expiry = quantize_varying(
            clustered_values(
                self.rng, options, centers=(0.25, 0.5, 1.0, 2.0), spread=0.02, runs=32
            ),
            self.rng, 8, 14,
        )
        volatility = quantize_varying(
            clustered_values(
                self.rng, options, centers=(0.1, 0.2, 0.35, 0.5), spread=0.03, runs=32
            ),
            self.rng, 8, 14,
        )
        return {
            "stock_price": Region("stock_price", stock, approximable=True),
            "strike_price": Region("strike_price", strike, approximable=True),
            "expiry": Region("expiry", expiry, approximable=True),
            "volatility": Region("volatility", volatility, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        call, put = black_scholes(
            arrays["stock_price"],
            arrays["strike_price"],
            arrays["expiry"],
            arrays["volatility"],
            risk_free_rate=self.RISK_FREE_RATE,
        )
        return WorkloadOutput(arrays={"call": call, "put": put})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        call_error = mean_relative_error_percent(exact["call"], approx["call"])
        put_error = mean_relative_error_percent(exact["put"], approx["put"])
        return (call_error + put_error) / 2.0
