"""JM — triangle-pair intersection (jmeint, AxBench).

For every pair of 3-D triangles the kernel decides whether they intersect
(Möller's interval-overlap test).  The output is a boolean per pair; the
error metric is the *miss rate*: the fraction of decisions that flip when the
inputs are approximated.  The paper reports this benchmark as the most
error-sensitive one (a small perturbation can flip a boolean), which the
reproduction preserves.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import miss_rate_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import clustered_triangles, quantize_varying

_EPSILON = 1e-7


def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.cross(a, b)


def _dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ij->i", a, b)


def _interval(
    projections: np.ndarray, distances: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Interval of the intersection line covered by one triangle.

    ``projections``/``distances`` have shape (n, 3): the projection of each
    vertex on the intersection line and its signed distance to the other
    triangle's plane.  The vertex that lies alone on one side of the plane
    defines the two interval endpoints.
    """
    d0, d1, d2 = distances[:, 0], distances[:, 1], distances[:, 2]
    p0, p1, p2 = projections[:, 0], projections[:, 1], projections[:, 2]

    # Identify the "odd" vertex: the one on its own side of the plane.
    odd_is_2 = d0 * d1 > 0
    odd_is_1 = (~odd_is_2) & (d0 * d2 > 0)
    odd_is_0 = ~(odd_is_2 | odd_is_1)

    def endpoints(odd, a, b):
        """Endpoints when ``odd`` is the lone vertex and a/b are the others."""
        da, db, dodd = distances[:, a], distances[:, b], distances[:, odd]
        pa, pb, podd = projections[:, a], projections[:, b], projections[:, odd]
        denom_a = da - dodd
        denom_b = db - dodd
        denom_a = np.where(np.abs(denom_a) < _EPSILON, _EPSILON, denom_a)
        denom_b = np.where(np.abs(denom_b) < _EPSILON, _EPSILON, denom_b)
        t1 = pa + (podd - pa) * da / denom_a
        t2 = pb + (podd - pb) * db / denom_b
        return t1, t2

    t1 = np.zeros_like(d0)
    t2 = np.zeros_like(d0)
    for odd_mask, odd, a, b in (
        (odd_is_2, 2, 0, 1),
        (odd_is_1, 1, 0, 2),
        (odd_is_0, 0, 1, 2),
    ):
        e1, e2 = endpoints(odd, a, b)
        t1 = np.where(odd_mask, e1, t1)
        t2 = np.where(odd_mask, e2, t2)
    low = np.minimum(t1, t2)
    high = np.maximum(t1, t2)
    return low, high


def triangles_intersect(tri_a: np.ndarray, tri_b: np.ndarray) -> np.ndarray:
    """Vectorized Möller triangle-triangle intersection test.

    Args:
        tri_a: array of shape (n, 3, 3) — n triangles, 3 vertices, xyz.
        tri_b: array of shape (n, 3, 3).

    Returns:
        Boolean array of shape (n,) — ``True`` where the triangles intersect.
        Coplanar pairs are conservatively reported as non-intersecting (they
        have probability ~0 for the synthetic inputs).
    """
    tri_a = np.asarray(tri_a, dtype=np.float64)
    tri_b = np.asarray(tri_b, dtype=np.float64)
    if tri_a.shape != tri_b.shape or tri_a.ndim != 3 or tri_a.shape[1:] != (3, 3):
        raise ValueError("triangle arrays must both have shape (n, 3, 3)")

    # Plane of triangle B: n_b . x + d_b = 0
    n_b = _cross(tri_b[:, 1] - tri_b[:, 0], tri_b[:, 2] - tri_b[:, 0])
    d_b = -_dot(n_b, tri_b[:, 0])
    dist_a = np.stack(
        [_dot(n_b, tri_a[:, v]) + d_b for v in range(3)], axis=1
    )

    # Plane of triangle A.
    n_a = _cross(tri_a[:, 1] - tri_a[:, 0], tri_a[:, 2] - tri_a[:, 0])
    d_a = -_dot(n_a, tri_a[:, 0])
    dist_b = np.stack(
        [_dot(n_a, tri_b[:, v]) + d_a for v in range(3)], axis=1
    )

    # Early rejection: all vertices of one triangle strictly on one side.
    same_side_a = np.all(dist_a > _EPSILON, axis=1) | np.all(dist_a < -_EPSILON, axis=1)
    same_side_b = np.all(dist_b > _EPSILON, axis=1) | np.all(dist_b < -_EPSILON, axis=1)
    rejected = same_side_a | same_side_b

    # Intersection line direction and the dominant axis for projection.
    direction = _cross(n_a, n_b)
    dominant = np.argmax(np.abs(direction), axis=1)
    rows = np.arange(tri_a.shape[0])
    proj_a = np.stack([tri_a[rows, v, dominant] for v in range(3)], axis=1)
    proj_b = np.stack([tri_b[rows, v, dominant] for v in range(3)], axis=1)

    coplanar = np.linalg.norm(direction, axis=1) < _EPSILON

    low_a, high_a = _interval(proj_a, dist_a)
    low_b, high_b = _interval(proj_b, dist_b)
    overlap = (high_a >= low_b) & (high_b >= low_a)

    return np.where(rejected | coplanar, False, overlap)


class JMeintWorkload(Workload):
    """JM: intersection tests between pairs of 3-D triangles."""

    name = "JM"
    description = "Intersection of tri."
    input_description = "400 K tri. pairs"
    error_metric = "Miss rate"
    approx_region_count = 6
    ops_per_byte = 2.4

    #: paper-scale number of triangle pairs
    FULL_PAIRS = 400_000

    def generate(self) -> dict[str, Region]:
        pairs = self.scaled(self.FULL_PAIRS, minimum=256)
        # Candidate pairs come from a broad-phase filter, so the second
        # triangle of every pair is close to the first; mesh coordinates
        # carry limited precision that varies from mesh region to region.
        raw_a = clustered_triangles(self.rng, pairs)
        raw_b = clustered_triangles(self.rng, pairs, near=raw_a)
        tri_a = quantize_varying(raw_a, self.rng, 8, 16)
        tri_b = quantize_varying(raw_b, self.rng, 8, 16)
        # The six approximable regions are the six vertex arrays (three
        # vertices per triangle, two triangles), matching #AR = 6.
        regions = {}
        for prefix, triangles in (("tri_a", tri_a), ("tri_b", tri_b)):
            for vertex in range(3):
                name = f"{prefix}_v{vertex}"
                regions[name] = Region(
                    name=name,
                    array=np.ascontiguousarray(triangles[:, vertex, :]),
                    approximable=True,
                )
        return regions

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        tri_a = np.stack([arrays[f"tri_a_v{v}"] for v in range(3)], axis=1)
        tri_b = np.stack([arrays[f"tri_b_v{v}"] for v in range(3)], axis=1)
        result = triangles_intersect(tri_a, tri_b)
        return WorkloadOutput(arrays={"intersects": result.astype(np.uint8)})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return miss_rate_percent(exact["intersects"], approx["intersects"])
