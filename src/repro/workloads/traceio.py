"""Trace ingestion: replay externally captured address/data traces.

An interchange file (NumPy ``.npz``) carries everything the simulator
consumes from a workload — the memory regions (names, data arrays,
approximable/output flags, in layout order) and the block-granular access
trace as flat columns — so a trace captured outside this repository (or
exported from a registry workload by ``repro trace export``) replays
through the vectorized engine exactly like any registry workload:

* :func:`capture_trace` snapshots a workload into a :class:`TraceBundle`,
* :func:`save_trace` / :func:`load_trace` round-trip a bundle through the
  ``.npz`` interchange format,
* :class:`TraceWorkload` wraps a bundle as a :class:`Workload`, and
* :func:`register_trace` plugs a trace file into the workload registry.

A :class:`TraceWorkload` reproduces the captured run bit-exactly: same
region layout, same backend training sample, same compiled trace, hence
identical counters and payload digest (pinned by the round-trip test).
The captured file carries data, not the kernel, so ``error_percent`` is 0
by construction — the statistical fidelity panel, which compares the
degraded approximable regions against their exact data, still reports how
much the lossy path damaged the stored values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gpu.trace import AccessType, MemoryAccess, MemoryTrace, TraceArrays
from repro.utils.blocks import DEFAULT_BLOCK_SIZE
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.registry import register_workload

#: bumped whenever the interchange layout changes incompatibly
TRACE_FORMAT_VERSION = 1


@dataclass
class TraceBundle:
    """One captured run: regions in layout order plus the flat trace."""

    #: trace name (uppercased; becomes the workload name on ingest)
    name: str
    #: block size the trace was captured at
    block_size_bytes: int
    #: the captured workload's compute intensity (drives the timing model,
    #: so the replay reproduces the original compute/memory overlap)
    ops_per_byte: float = 1.0
    #: regions in the simulator's layout order (inputs first, then outputs)
    regions: list[Region] = field(default_factory=list)
    #: the access trace as flat per-access columns
    trace: TraceArrays | None = None

    def input_regions(self) -> list[Region]:
        """The captured input regions, in layout order."""
        return [region for region in self.regions if not region.is_output]

    def output_regions(self) -> list[Region]:
        """The captured output regions, in layout order."""
        return [region for region in self.regions if region.is_output]


def capture_trace(
    workload: Workload, block_size_bytes: int = DEFAULT_BLOCK_SIZE
) -> TraceBundle:
    """Snapshot a workload's regions and trace into a :class:`TraceBundle`.

    Runs the same generate → kernel → trace pipeline the simulator runs,
    so replaying the bundle reproduces the original run bit-exactly.
    """
    input_regions = workload.generate()
    exact_outputs = workload.run(workload.input_arrays(input_regions))
    all_regions: dict[str, Region] = dict(input_regions)
    all_regions.update(workload.output_regions(exact_outputs))
    trace = workload.trace(all_regions, block_size_bytes=block_size_bytes)
    return TraceBundle(
        name=workload.name.upper(),
        block_size_bytes=block_size_bytes,
        ops_per_byte=float(workload.ops_per_byte),
        regions=list(all_regions.values()),
        trace=trace.as_arrays(),
    )


def save_trace(path: str | Path, bundle: TraceBundle) -> Path:
    """Write a bundle to the ``.npz`` interchange format."""
    if bundle.trace is None:
        raise ValueError("bundle has no trace to save")
    names = [region.name for region in bundle.regions]
    if len(set(names)) != len(names):
        raise ValueError("region names must be unique")
    unknown = set(bundle.trace.regions) - set(names)
    if unknown:
        raise ValueError(f"trace references unknown regions: {sorted(unknown)}")
    meta = {
        "format": TRACE_FORMAT_VERSION,
        "name": bundle.name.upper(),
        "block_size_bytes": int(bundle.block_size_bytes),
        "ops_per_byte": float(bundle.ops_per_byte),
        "regions": [
            {
                "name": region.name,
                "approximable": bool(region.approximable),
                "is_output": bool(region.is_output),
                "dtype": str(region.array.dtype),
                "shape": list(region.array.shape),
            }
            for region in bundle.regions
        ],
        "trace_regions": list(bundle.trace.regions),
    }
    arrays = {
        f"region_{index}": region.array
        for index, region in enumerate(bundle.regions)
    }
    path = Path(path)
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        trace_region_index=bundle.trace.region_index,
        trace_block_index=bundle.trace.block_index,
        trace_is_write=bundle.trace.is_write,
        trace_counts=bundle.trace.counts,
        **arrays,
    )
    # np.savez appends .npz when missing; report the real on-disk path
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_bundle(path: str | Path) -> TraceBundle:
    """Read a :class:`TraceBundle` back from an interchange file."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]))
        if meta.get("format") != TRACE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format {meta.get('format')!r} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        regions: list[Region] = []
        for index, spec in enumerate(meta["regions"]):
            array = data[f"region_{index}"]
            if str(array.dtype) != spec["dtype"] or list(array.shape) != spec["shape"]:
                raise ValueError(
                    f"{path}: region {spec['name']!r} does not match its "
                    f"declared dtype/shape"
                )
            regions.append(
                Region(
                    name=spec["name"],
                    array=array,
                    approximable=spec["approximable"],
                    is_output=spec["is_output"],
                )
            )
        trace = TraceArrays(
            region_index=data["trace_region_index"],
            block_index=data["trace_block_index"],
            is_write=data["trace_is_write"],
            counts=data["trace_counts"],
            regions=tuple(meta["trace_regions"]),
        )
    return TraceBundle(
        name=meta["name"],
        block_size_bytes=int(meta["block_size_bytes"]),
        ops_per_byte=float(meta.get("ops_per_byte", 1.0)),
        regions=regions,
        trace=trace,
    )


def _rebuild_trace(arrays: TraceArrays) -> MemoryTrace:
    """Reconstruct a :class:`MemoryTrace` whose columns equal ``arrays``.

    Contiguous runs of single-count accesses to one region become one
    array-backed stream segment (the fast path — workload-generated traces
    are entirely single-count); accesses with repeat counts are appended
    individually to preserve the RLE column bit-exactly.
    """
    trace = MemoryTrace()
    n = len(arrays)
    if n == 0:
        return trace
    # run boundaries: region or read/write flips
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = (
        (arrays.region_index[1:] != arrays.region_index[:-1])
        | (arrays.is_write[1:] != arrays.is_write[:-1])
    )
    starts = np.flatnonzero(change).tolist() + [n]
    for begin, end in zip(starts, starts[1:]):
        region = arrays.regions[int(arrays.region_index[begin])]
        access_type = (
            AccessType.WRITE if bool(arrays.is_write[begin]) else AccessType.READ
        )
        counts = arrays.counts[begin:end]
        if np.all(counts == 1):
            trace.add_blocks(region, arrays.block_index[begin:end], access_type)
            continue
        cursor = begin
        while cursor < end:
            if arrays.counts[cursor] == 1:
                stop = cursor
                while stop < end and arrays.counts[stop] == 1:
                    stop += 1
                trace.add_blocks(
                    region, arrays.block_index[cursor:stop], access_type
                )
                cursor = stop
            else:
                trace.append(
                    MemoryAccess(
                        region=region,
                        block_index=int(arrays.block_index[cursor]),
                        access_type=access_type,
                        count=int(arrays.counts[cursor]),
                    )
                )
                cursor += 1
    return trace


class TraceWorkload(Workload):
    """A captured trace as a first-class workload.

    ``generate()`` returns the captured input regions, ``run()`` replays
    the captured outputs (the file carries data, not the kernel — see the
    module docstring) and ``trace()`` rebuilds the captured access
    sequence, so the simulator reproduces the original run bit-exactly.
    """

    description = "Ingested address/data trace"
    input_description = "captured trace"
    error_metric = "n/a (fidelity panel)"

    def __init__(self, bundle: TraceBundle, scale: float = 1.0, seed: int = 2019) -> None:
        super().__init__(scale=scale, seed=seed)
        if bundle.trace is None:
            raise ValueError("bundle has no trace")
        self.bundle = bundle
        self.name = bundle.name
        self.ops_per_byte = bundle.ops_per_byte
        self.approx_region_count = sum(
            region.approximable for region in bundle.regions
        )

    def generate(self) -> dict[str, Region]:
        return {
            region.name: Region(
                name=region.name,
                array=region.array,
                approximable=region.approximable,
                is_output=False,
            )
            for region in self.bundle.input_regions()
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        return WorkloadOutput(
            arrays={
                region.name: region.array
                for region in self.bundle.output_regions()
            }
        )

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        # The captured outputs are data, not a re-runnable kernel, so both
        # sides are identical by construction; data-level damage appears in
        # the fidelity panel instead.
        return 0.0

    def trace(
        self,
        regions: dict[str, Region],
        block_size_bytes: int = DEFAULT_BLOCK_SIZE,
    ) -> MemoryTrace:
        if block_size_bytes != self.bundle.block_size_bytes:
            raise ValueError(
                f"trace was captured at {self.bundle.block_size_bytes} B blocks, "
                f"cannot replay at {block_size_bytes} B"
            )
        return _rebuild_trace(self.bundle.trace)


def load_trace(path: str | Path, seed: int = 2019) -> TraceWorkload:
    """Load an interchange file as a ready-to-simulate workload."""
    return TraceWorkload(load_bundle(path), seed=seed)


def register_trace(path: str | Path, name: str | None = None) -> str:
    """Register an interchange file in the workload registry.

    The trace then behaves like any registry workload for in-process use
    (``get_workload(name)``); the factory ignores ``scale`` because a
    captured trace has a fixed size.  Returns the registered name.
    """
    bundle = load_bundle(path)
    registered = (name or bundle.name).upper()

    def factory(scale: float = 1.0, seed: int = 2019) -> TraceWorkload:
        workload = TraceWorkload(bundle, seed=seed)
        workload.name = registered
        return workload

    register_workload(registered, factory, family="trace")
    return registered
