"""FWT — fast Walsh-Hadamard transform (CUDA SDK).

Transforms a signal with the orthogonal Walsh-Hadamard basis using the
in-place butterfly algorithm.  The signal and the (second) kernel input are
the two approximable regions (#AR = 2); the error metric is NRMSE of the
transformed output.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import nrmse_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import correlated_series, quantize_varying


def fast_walsh_transform(signal: np.ndarray) -> np.ndarray:
    """Iterative radix-2 Walsh-Hadamard transform (length must be a power of 2)."""
    data = np.asarray(signal, dtype=np.float64).copy()
    length = data.shape[0]
    if length == 0 or length & (length - 1):
        raise ValueError(f"signal length must be a power of two, got {length}")
    span = 1
    while span < length:
        view = data.reshape(-1, 2 * span)
        first = view[:, :span].copy()
        second = view[:, span:].copy()
        view[:, :span] = first + second
        view[:, span:] = first - second
        span *= 2
    return data.astype(np.float32)


def dyadic_convolution(signal: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Dyadic (XOR) convolution via the Walsh-Hadamard transform.

    This is what the CUDA SDK sample computes: transform both inputs,
    multiply element-wise, transform back and normalize.
    """
    length = signal.shape[0]
    transformed = fast_walsh_transform(signal) * fast_walsh_transform(kernel)
    return (fast_walsh_transform(transformed) / length).astype(np.float32)


class FastWalshTransformWorkload(Workload):
    """FWT: dyadic convolution through the fast Walsh-Hadamard transform."""

    name = "FWT"
    description = "Fast walsh trans."
    input_description = "8 M elements"
    error_metric = "NRMSE"
    approx_region_count = 2
    ops_per_byte = 2.0

    #: paper-scale element count
    FULL_ELEMENTS = 8 * 1024 * 1024

    def generate(self) -> dict[str, Region]:
        elements = self.scaled(self.FULL_ELEMENTS, minimum=4096)
        # round down to a power of two as required by the butterfly network
        elements = 1 << (elements.bit_length() - 1)
        # Fixed-point-like samples whose precision varies along the signal.
        signal = quantize_varying(
            correlated_series(self.rng, elements, correlation=0.97, scale=10.0),
            self.rng, 8, 16,
        )
        kernel = quantize_varying(
            correlated_series(self.rng, elements, correlation=0.9, scale=1.0),
            self.rng, 8, 16,
        )
        return {
            "signal": Region("signal", signal, approximable=True, read_passes=2),
            "kernel": Region("kernel", kernel, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        result = dyadic_convolution(arrays["signal"], arrays["kernel"])
        return WorkloadOutput(arrays={"convolved": result})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return nrmse_percent(exact["convolved"], approx["convolved"])
