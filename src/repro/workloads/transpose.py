"""TP — matrix transpose (CUDA SDK).

Transposes a square matrix.  The kernel itself performs no arithmetic, so the
output error directly reflects how much the input data was degraded by the
lossy path; the paper uses NRMSE.  The column-major read pattern is captured
by a strided block trace (#AR = 2: the input matrix and the tile buffer).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.error import nrmse_percent
from repro.workloads.base import Region, Workload, WorkloadOutput
from repro.workloads.datagen import quantize_varying, smooth_image


class TransposeWorkload(Workload):
    """TP: out-of-place transpose of a square matrix."""

    name = "TP"
    description = "Matrix transpose"
    input_description = "1024×1024"
    error_metric = "NRMSE"
    approx_region_count = 2
    ops_per_byte = 0.8

    #: paper-scale matrix dimension
    FULL_DIM = 1024

    def generate(self) -> dict[str, Region]:
        dim = self.scaled_dim(self.FULL_DIM, minimum=64)
        matrix = quantize_varying(
            smooth_image(self.rng, dim, dim, amplitude=100.0, offset=128.0, noise=2.0),
            self.rng, 1, 9,
        )
        # The tile (shared-memory staging) buffer is modelled as a second,
        # small approximable region that the kernel also streams through.
        tile = quantize_varying(
            smooth_image(self.rng, 32, 32, amplitude=100.0, offset=128.0, noise=2.0),
            self.rng, 1, 9,
        )
        return {
            "matrix": Region("matrix", matrix, approximable=True, stride=8),
            "tile_buffer": Region("tile_buffer", tile, approximable=True),
        }

    def run(self, arrays: dict[str, np.ndarray]) -> WorkloadOutput:
        transposed = np.ascontiguousarray(arrays["matrix"].T)
        return WorkloadOutput(arrays={"transposed": transposed})

    def error(self, exact: WorkloadOutput, approx: WorkloadOutput) -> float:
        return nrmse_percent(exact["transposed"], approx["transposed"])
