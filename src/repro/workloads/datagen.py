"""Synthetic input-data generators with controllable compressibility.

The paper evaluates on real benchmark inputs; what matters for reproducing
its results is not the exact bytes but the *value structure* that drives
compressibility and value similarity between adjacent elements (which the
TSLC predictor exploits).  These helpers generate such data: spatially smooth
images, temporally correlated series, clustered option parameters and
quantized sensor-style values.
"""

from __future__ import annotations

import numpy as np


def smooth_image(
    rng: np.random.Generator,
    height: int,
    width: int,
    amplitude: float = 128.0,
    num_waves: int = 6,
    noise: float = 1.0,
    offset: float = 128.0,
    min_wavelength_px: float = 48.0,
    max_wavelength_px: float = 256.0,
) -> np.ndarray:
    """A smooth, natural-image-like 2-D field (float32).

    Superimposes a handful of sinusoids whose wavelengths are fixed in
    *pixels* (not in image fractions), plus mild noise.  Keeping the
    wavelengths pixel-scaled preserves the strong local correlation of real
    images at any resolution, which is what makes adjacent pixels similar
    (the property both the compressors and the TSLC value predictor rely on).
    """
    if height <= 0 or width <= 0:
        raise ValueError("image dimensions must be positive")
    if not 0 < min_wavelength_px <= max_wavelength_px:
        raise ValueError("wavelengths must be positive and ordered")
    ys = np.arange(height, dtype=np.float64)[:, None]
    xs = np.arange(width, dtype=np.float64)[None, :]
    image = np.zeros((height, width), dtype=np.float64)
    for _ in range(num_waves):
        wavelength_y = rng.uniform(min_wavelength_px, max_wavelength_px)
        wavelength_x = rng.uniform(min_wavelength_px, max_wavelength_px)
        phase = rng.uniform(0.0, 2 * np.pi)
        weight = rng.uniform(0.3, 1.0)
        image += weight * np.sin(
            2 * np.pi * (ys / wavelength_y + xs / wavelength_x) + phase
        )
    image = image / max(1, num_waves) * amplitude + offset
    image += rng.normal(0.0, noise, size=image.shape)
    return image.astype(np.float32)


def spectral_field(
    rng: np.random.Generator,
    height: int,
    width: int,
    num_waves: int = 12,
    spectrum_exponent: float = 1.6,
    min_wavelength_px: float = 8.0,
    max_wavelength_px: float = 512.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A spatially correlated field with a power-law wavelength spectrum.

    Superimposes ``num_waves`` plane waves whose wavelengths are drawn
    log-uniformly from [min, max] pixels and whose amplitudes follow
    ``wavelength ** (spectrum_exponent / 2)`` — long waves dominate, the
    way geophysical fields (pressure, temperature, geopotential) do.  A
    larger exponent gives a smoother field; 0 gives equal power at all
    scales.  Unlike :func:`smooth_image` the spectrum is an explicit knob,
    which is what the WEATHER ensemble family varies.
    """
    if height <= 0 or width <= 0:
        raise ValueError("field dimensions must be positive")
    if num_waves <= 0:
        raise ValueError("num_waves must be positive")
    if not 0 < min_wavelength_px <= max_wavelength_px:
        raise ValueError("wavelengths must be positive and ordered")
    ys = np.arange(height, dtype=np.float64)[:, None]
    xs = np.arange(width, dtype=np.float64)[None, :]
    log_min, log_max = np.log(min_wavelength_px), np.log(max_wavelength_px)
    field = np.zeros((height, width), dtype=np.float64)
    for _ in range(num_waves):
        wavelength = float(np.exp(rng.uniform(log_min, log_max)))
        direction = rng.uniform(0.0, 2 * np.pi)
        phase = rng.uniform(0.0, 2 * np.pi)
        weight = rng.uniform(0.5, 1.0)
        weight *= (wavelength / max_wavelength_px) ** (spectrum_exponent / 2.0)
        ky = np.sin(direction) / wavelength
        kx = np.cos(direction) / wavelength
        field += weight * np.sin(2 * np.pi * (ys * ky + xs * kx) + phase)
    field *= amplitude / np.sqrt(num_waves)
    return field.astype(np.float32)


def correlated_series(
    rng: np.random.Generator,
    length: int,
    correlation: float = 0.95,
    scale: float = 1.0,
    offset: float = 0.0,
) -> np.ndarray:
    """AR(1) series (float32): adjacent values are similar (FWT, BP inputs)."""
    if length <= 0:
        raise ValueError("length must be positive")
    if not 0 <= correlation < 1:
        raise ValueError("correlation must lie in [0, 1)")
    noise = rng.normal(0.0, 1.0, size=length)
    series = np.empty(length, dtype=np.float64)
    series[0] = noise[0]
    for index in range(1, length):
        series[index] = correlation * series[index - 1] + np.sqrt(
            1 - correlation**2
        ) * noise[index]
    return (series * scale + offset).astype(np.float32)


def clustered_values(
    rng: np.random.Generator,
    length: int,
    centers: tuple[float, ...] = (10.0, 25.0, 50.0, 100.0),
    spread: float = 0.05,
    runs: int = 1,
) -> np.ndarray:
    """Values clustered around a few centres (option strikes, prices).

    ``runs`` consecutive elements share the same centre, modelling data laid
    out in groups (e.g. an option chain stores all strikes of one underlying
    contiguously) — the adjacency the TSLC value predictor relies on.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if runs <= 0:
        raise ValueError("runs must be positive")
    n_groups = -(-length // runs)
    group_centers = rng.choice(np.asarray(centers, dtype=np.float64), size=n_groups)
    chosen = np.repeat(group_centers, runs)[:length]
    values = chosen * (1.0 + rng.normal(0.0, spread, size=length))
    return values.astype(np.float32)


def quantized(array: np.ndarray, step: float) -> np.ndarray:
    """Quantize values to multiples of ``step`` (adds repeated values)."""
    if step <= 0:
        raise ValueError("step must be positive")
    return (np.round(np.asarray(array) / step) * step).astype(np.float32)


def quantize_pow2(array: np.ndarray, fraction_bits: int) -> np.ndarray:
    """Quantize to multiples of ``2**-fraction_bits`` (float32).

    Real benchmark inputs are rarely full-precision random floats: images are
    8-bit pixels promoted to float, sensor values and option parameters carry
    limited precision.  Snapping values to a power-of-two grid reproduces
    that property — the low mantissa bits (and hence the low 16-bit symbol of
    each float) become mostly zero, which is what gives the paper's inputs
    their compressibility.
    """
    step = 2.0 ** (-fraction_bits)
    return (np.round(np.asarray(array, dtype=np.float64) / step) * step).astype(np.float32)


def quantize_varying(
    array: np.ndarray,
    rng: np.random.Generator,
    min_fraction_bits: int,
    max_fraction_bits: int,
    segment_elements: int = 32,
) -> np.ndarray:
    """Quantize with a precision that varies from segment to segment.

    Real inputs are heterogeneous: parts of an image are flat while others
    carry fine detail, parts of a table hold round numbers while others hold
    full-precision values.  That heterogeneity is what spreads the compressed
    block sizes across the whole range between MAG multiples (the Fig. 2
    distribution); quantizing every element identically would collapse all
    blocks of a workload onto nearly the same compressed size.  Each segment
    of ``segment_elements`` consecutive elements gets a fraction-bit count
    drawn uniformly from [min, max].
    """
    if min_fraction_bits > max_fraction_bits:
        raise ValueError("min_fraction_bits must not exceed max_fraction_bits")
    if segment_elements <= 0:
        raise ValueError("segment_elements must be positive")
    values = np.asarray(array, dtype=np.float64)
    flat = values.reshape(-1).copy()
    n_segments = -(-flat.size // segment_elements)
    bits = rng.integers(min_fraction_bits, max_fraction_bits + 1, size=n_segments)
    for segment, fraction_bits in enumerate(bits):
        start = segment * segment_elements
        stop = min(flat.size, start + segment_elements)
        step = 2.0 ** (-int(fraction_bits))
        flat[start:stop] = np.round(flat[start:stop] / step) * step
    return flat.reshape(values.shape).astype(np.float32)


def spatial_points(
    rng: np.random.Generator,
    count: int,
    num_clusters: int = 32,
    cluster_spread: float = 0.5,
    lat_range: tuple[float, float] = (25.0, 50.0),
    lng_range: tuple[float, float] = (-125.0, -65.0),
) -> np.ndarray:
    """Clustered geographic points (count, 2) float32 (the NN records)."""
    if count <= 0:
        raise ValueError("count must be positive")
    centers_lat = rng.uniform(*lat_range, size=num_clusters)
    centers_lng = rng.uniform(*lng_range, size=num_clusters)
    assignment = rng.integers(0, num_clusters, size=count)
    lat = centers_lat[assignment] + rng.normal(0.0, cluster_spread, size=count)
    lng = centers_lng[assignment] + rng.normal(0.0, cluster_spread, size=count)
    return np.stack([lat, lng], axis=1).astype(np.float32)


def clustered_triangles(
    rng: np.random.Generator,
    count: int,
    extent: float = 100.0,
    triangle_size: float = 2.0,
    near: np.ndarray | None = None,
    near_spread: float = 1.5,
) -> np.ndarray:
    """Vertices of ``count`` triangles clustered in space, shape (count, 3, 3).

    When ``near`` (another triangle array of the same shape) is given, each
    triangle is placed close to the corresponding triangle of ``near`` so
    that a pair intersects with a realistic, non-trivial probability — the
    behaviour of the JM collision-detection benchmark, whose candidate pairs
    come from a broad-phase filter and are therefore already close together.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if near is not None:
        centers = near.mean(axis=1, keepdims=True).astype(np.float64)
        centers = centers + rng.normal(0.0, near_spread, size=(count, 1, 3))
    else:
        centers = rng.uniform(0.0, extent, size=(count, 1, 3))
    offsets = rng.normal(0.0, triangle_size, size=(count, 3, 3))
    return (centers + offsets).astype(np.float32)
