"""Campaign executor: fan jobs out over processes, collect in order.

``run_campaign`` is the one entry point: it expands a spec, serves every
already-stored grid cell from the result store (content-hash lookup, zero
simulation), and fans the remaining jobs out over a ``ProcessPoolExecutor``
when ``workers > 1``.  The result exposes records in deterministic grid
order however they completed, per-job failures are captured as error
records instead of propagating, and every fresh result is appended to the
store the moment it arrives, so an interrupted sweep resumes where it
stopped.

Robustness knobs: ``job_timeout`` converts a wedged job into a captured
error record instead of stalling the campaign forever, and Ctrl-C marks
the partial outcome ``interrupted`` (completed records are already in the
store) instead of dumping a traceback.  The distributed coordinator
(:mod:`repro.campaign.service`) reuses the cache pass and the record
collector so both execution paths store byte-identical records.
"""

from __future__ import annotations

import math
import os
import socket
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

import repro.obs as obs
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import JobRecord, ResultStore
from repro.campaign.worker import execute_job
from repro.obs import metrics, tracing
from repro.obs.log import get_logger

_log = get_logger("campaign.executor")

#: progress callback: (record, jobs done so far, total jobs)
ProgressFn = Callable[[JobRecord, int, int], None]


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced.

    ``records`` maps job content hash to :class:`JobRecord`; ``jobs`` keeps
    the deterministic expansion order, so iteration order is stable.
    ``spec`` is None for job lists whose coupled axes no single spec can
    express (see :func:`repro.campaign.spec.expand_specs`).
    """

    spec: CampaignSpec | None
    jobs: list[Job] = field(default_factory=list)
    records: dict[str, JobRecord] = field(default_factory=dict)
    #: True when the run was cut short (Ctrl-C); ``records`` then holds
    #: only the cells that finished, all of them already persisted
    interrupted: bool = False
    #: lease/retry/quarantine counters when the distributed coordinator ran
    #: the campaign (see :class:`repro.campaign.queue.LeaseQueue`); empty
    #: for in-process runs
    queue_stats: dict = field(default_factory=dict)

    def iter_records(self) -> Iterator[tuple[Job, JobRecord]]:
        """(job, record) pairs in grid expansion order.

        Cells an interrupted run never reached are skipped — a completed
        run yields every job.
        """
        for job in self.jobs:
            record = self.records.get(job.content_hash)
            if record is not None:
                yield job, record

    def record_for(self, job: Job) -> JobRecord:
        """The record of one job."""
        return self.records[job.content_hash]

    @property
    def n_total(self) -> int:
        """Number of grid cells in the campaign."""
        return len(self.jobs)

    @property
    def n_missing(self) -> int:
        """Cells without a record (nonzero only for interrupted runs)."""
        return len(self.jobs) - len(self.records)

    @property
    def n_cached(self) -> int:
        """Cells served from the result store without simulating."""
        return sum(record.cached for record in self.records.values())

    @property
    def n_executed(self) -> int:
        """Cells actually simulated by this invocation."""
        return sum(not record.cached for record in self.records.values())

    @property
    def n_failed(self) -> int:
        """Cells whose job raised (captured, not propagated)."""
        return sum(not record.ok for record in self.records.values())

    def failures(self) -> list[JobRecord]:
        """The error records, in grid order."""
        return [record for _, record in self.iter_records() if not record.ok]

    def raise_for_failures(self) -> None:
        """Raise a RuntimeError carrying every failed job's full traceback."""
        failed = self.failures()
        if not failed:
            return
        lines = [f"{len(failed)} of {self.n_total} campaign jobs failed:"]
        for record in failed:
            lines.append(f"--- {record.job.label()} ---")
            lines.append((record.error or "(no traceback captured)").rstrip())
        raise RuntimeError("\n".join(lines))


def serve_cached(
    outcome: CampaignResult,
    store: ResultStore | None,
    progress: ProgressFn | None,
) -> list[Job]:
    """Fill ``outcome`` from the store; returns the jobs still to run."""
    pending: list[Job] = []
    with tracing.span("campaign.lookup", cat="campaign", jobs=len(outcome.jobs)):
        for job in outcome.jobs:
            stored = store.lookup(job) if store is not None else None
            if stored is not None:
                record = replace(stored, job=job, cached=True)
                outcome.records[job.content_hash] = record
                if progress is not None:
                    progress(record, len(outcome.records), outcome.n_total)
            else:
                pending.append(job)
    return pending


def make_collector(
    outcome: CampaignResult,
    store: ResultStore | None,
    progress: ProgressFn | None,
) -> Callable[[dict], None]:
    """One place every freshly executed record flows through.

    Parses the wire/record dict, merges worker spans into this process's
    tracer (one coherent Chrome trace), persists to the store immediately
    (an interrupted sweep keeps everything that finished), and reports
    progress.  Shared by the in-process pool and the distributed
    coordinator so both paths store identical records.
    """

    def collect(record_dict: dict) -> None:
        record = JobRecord.from_dict(record_dict)
        if record.spans and tracing.enabled():
            tracing.extend(record.spans)
        if store is not None:
            store.put(record)
        outcome.records[record.job.content_hash] = record
        if progress is not None:
            progress(record, len(outcome.records), outcome.n_total)

    return collect


def timeout_record(job: Job, timeout_s: float) -> dict:
    """Error-record dict for a job whose future exceeded ``job_timeout``."""
    return {
        "job_hash": job.content_hash,
        "job": job.to_dict(),
        "status": "error",
        "result": None,
        "error": (
            f"job exceeded job_timeout={timeout_s:g}s and was abandoned "
            "(worker process may still be running; re-run to retry)"
        ),
        "elapsed_s": float(timeout_s),
        "provenance": {"hostname": socket.gethostname(), "pid": os.getpid(),
                       "timed_out": True},
    }


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool holding wedged workers.

    ``shutdown(wait=False)`` alone leaves a truly hung worker process
    blocking interpreter exit (concurrent.futures joins workers atexit),
    so the leaked processes are terminated outright.  Uses the private
    ``_processes`` map — guarded, because there is no public handle.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        for proc in list((pool._processes or {}).values()):
            proc.terminate()
    except Exception:
        pass


def _run_pool(
    pending: list[Job],
    workers: int,
    job_timeout: float | None,
    collect: Callable[[dict], None],
    outcome: CampaignResult,
) -> None:
    """Fan ``pending`` over a process pool, collecting in completion order.

    At most ``workers`` jobs are in flight, so a job's timeout clock starts
    when it is submitted to a free slot, not when the campaign started.
    A timed-out future is converted into a captured error record and its
    slot re-used; the wedged process is terminated during shutdown.
    """
    max_workers = min(workers, len(pending))
    pool = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=obs.worker_init,
        initargs=(obs.state(),),
    )
    queued: deque[Job] = deque(pending)
    in_flight: dict = {}  # future -> (job, deadline)
    timed_out = False
    try:
        while queued or in_flight:
            while queued and len(in_flight) < max_workers:
                job = queued.popleft()
                deadline = (
                    math.inf if job_timeout is None
                    else time.monotonic() + job_timeout
                )
                in_flight[pool.submit(execute_job, job.to_dict())] = (job, deadline)
            timeout = None
            if job_timeout is not None:
                next_deadline = min(dl for _, dl in in_flight.values())
                timeout = max(0.0, next_deadline - time.monotonic())
            done, _ = wait(in_flight, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                del in_flight[future]
                collect(future.result())
            if job_timeout is not None:
                now = time.monotonic()
                expired = [f for f, (_, dl) in in_flight.items() if dl <= now]
                for future in expired:
                    job, _ = in_flight.pop(future)
                    future.cancel()  # almost certainly running; best-effort
                    timed_out = True
                    _log.warning("job %s timed out after %gs, recording as "
                                 "failed", job.label(), job_timeout)
                    if metrics.enabled():
                        metrics.inc("campaign.job.timeout")
                    collect(timeout_record(job, job_timeout))
    except KeyboardInterrupt:
        outcome.interrupted = True
        _log.warning("interrupted — cancelling %d pending job(s)",
                     len(in_flight) + len(queued))
        _terminate_pool(pool)
        return
    if timed_out:
        _terminate_pool(pool)
    else:
        pool.shutdown()


def run_jobs(
    spec: CampaignSpec | None,
    jobs: list[Job],
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
    job_timeout: float | None = None,
) -> CampaignResult:
    """Execute an explicit job list (the engine behind :func:`run_campaign`).

    Args:
        spec: the campaign the jobs belong to (kept on the result); None for
            coupled-axis job lists no single spec can express.
        jobs: jobs to run, in collection order.
        store: optional persistent store; successful stored records are
            reused (failures are retried) and fresh records are appended.
        workers: process count; ``<= 1`` runs in-process.
        progress: called after every job with (record, done, total); with
            ``workers > 1`` records arrive in completion order, but the
            result's :meth:`CampaignResult.iter_records` always yields grid
            order.
        job_timeout: per-job wall-clock cap in seconds.  A job still running
            at its deadline is recorded as a captured error (the campaign
            continues; a re-run retries it) instead of stalling the sweep
            forever on one wedged worker.  None (default) waits forever.
    """
    # Dedup by content hash: a grid can alias cells (e.g. the baseline is
    # threshold-independent), and each unique cell runs exactly once.
    outcome = CampaignResult(
        spec=spec, jobs=list({job.content_hash: job for job in jobs}.values())
    )
    pending = serve_cached(outcome, store, progress)
    collect = make_collector(outcome, store, progress)

    with tracing.span("campaign.execute", cat="campaign", pending=len(pending),
                      workers=workers):
        if workers > 1 and len(pending) > 1:
            # Collect in completion order so every finished job is persisted
            # and reported immediately — an interrupted sweep keeps
            # everything that finished, even while a slow early job is still
            # running.  The pool initializer carries the observability
            # switches into the workers (robust under both fork and spawn).
            _run_pool(pending, workers, job_timeout, collect, outcome)
        else:
            try:
                for job in pending:
                    collect(execute_job(job.to_dict()))
            except KeyboardInterrupt:
                outcome.interrupted = True
                _log.warning("interrupted — %d of %d cells completed",
                             len(outcome.records), outcome.n_total)

    if metrics.enabled():
        metrics.inc("campaign.jobs", outcome.n_total)
        metrics.inc("campaign.cache_hits", outcome.n_cached)
        metrics.inc("campaign.executed", outcome.n_executed)
        metrics.inc("campaign.failed", outcome.n_failed)
    return outcome


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
    job_timeout: float | None = None,
) -> CampaignResult:
    """Expand a campaign spec and run every grid cell not already stored."""
    return run_jobs(spec, spec.expand(), store=store, workers=workers,
                    progress=progress, job_timeout=job_timeout)
