"""Campaign executor: fan jobs out over processes, collect in order.

``run_campaign`` is the one entry point: it expands a spec, serves every
already-stored grid cell from the result store (content-hash lookup, zero
simulation), and fans the remaining jobs out over a ``ProcessPoolExecutor``
when ``workers > 1``.  The result exposes records in deterministic grid
order however they completed, per-job failures are captured as error
records instead of propagating, and every fresh result is appended to the
store the moment it arrives, so an interrupted sweep resumes where it
stopped.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

import repro.obs as obs
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import JobRecord, ResultStore
from repro.campaign.worker import execute_job
from repro.obs import metrics, tracing

#: progress callback: (record, jobs done so far, total jobs)
ProgressFn = Callable[[JobRecord, int, int], None]


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced.

    ``records`` maps job content hash to :class:`JobRecord`; ``jobs`` keeps
    the deterministic expansion order, so iteration order is stable.
    ``spec`` is None for job lists whose coupled axes no single spec can
    express (see :func:`repro.campaign.spec.expand_specs`).
    """

    spec: CampaignSpec | None
    jobs: list[Job] = field(default_factory=list)
    records: dict[str, JobRecord] = field(default_factory=dict)

    def iter_records(self) -> Iterator[tuple[Job, JobRecord]]:
        """(job, record) pairs in grid expansion order."""
        for job in self.jobs:
            yield job, self.records[job.content_hash]

    def record_for(self, job: Job) -> JobRecord:
        """The record of one job."""
        return self.records[job.content_hash]

    @property
    def n_total(self) -> int:
        """Number of grid cells in the campaign."""
        return len(self.jobs)

    @property
    def n_cached(self) -> int:
        """Cells served from the result store without simulating."""
        return sum(record.cached for record in self.records.values())

    @property
    def n_executed(self) -> int:
        """Cells actually simulated by this invocation."""
        return sum(not record.cached for record in self.records.values())

    @property
    def n_failed(self) -> int:
        """Cells whose job raised (captured, not propagated)."""
        return sum(not record.ok for record in self.records.values())

    def failures(self) -> list[JobRecord]:
        """The error records, in grid order."""
        return [record for _, record in self.iter_records() if not record.ok]

    def raise_for_failures(self) -> None:
        """Raise a RuntimeError carrying every failed job's full traceback."""
        failed = self.failures()
        if not failed:
            return
        lines = [f"{len(failed)} of {self.n_total} campaign jobs failed:"]
        for record in failed:
            lines.append(f"--- {record.job.label()} ---")
            lines.append((record.error or "(no traceback captured)").rstrip())
        raise RuntimeError("\n".join(lines))


def run_jobs(
    spec: CampaignSpec | None,
    jobs: list[Job],
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Execute an explicit job list (the engine behind :func:`run_campaign`).

    Args:
        spec: the campaign the jobs belong to (kept on the result); None for
            coupled-axis job lists no single spec can express.
        jobs: jobs to run, in collection order.
        store: optional persistent store; successful stored records are
            reused (failures are retried) and fresh records are appended.
        workers: process count; ``<= 1`` runs in-process.
        progress: called after every job with (record, done, total); with
            ``workers > 1`` records arrive in completion order, but the
            result's :meth:`CampaignResult.iter_records` always yields grid
            order.
    """
    # Dedup by content hash: a grid can alias cells (e.g. the baseline is
    # threshold-independent), and each unique cell runs exactly once.
    outcome = CampaignResult(
        spec=spec, jobs=list({job.content_hash: job for job in jobs}.values())
    )
    pending: list[Job] = []
    done = 0

    with tracing.span("campaign.lookup", cat="campaign", jobs=len(outcome.jobs)):
        for job in outcome.jobs:
            stored = store.lookup(job) if store is not None else None
            if stored is not None:
                record = replace(stored, job=job, cached=True)
                outcome.records[job.content_hash] = record
                done += 1
                if progress is not None:
                    progress(record, done, outcome.n_total)
            else:
                pending.append(job)

    def collect(record_dict: dict) -> None:
        nonlocal done
        record = JobRecord.from_dict(record_dict)
        # Worker-side observability rides back on the record: merge spans
        # into this process's tracer (one coherent Chrome trace) and keep
        # the metrics snapshot on the record for store-level aggregation.
        if record.spans and tracing.enabled():
            tracing.extend(record.spans)
        if store is not None:
            store.put(record)
        outcome.records[record.job.content_hash] = record
        done += 1
        if progress is not None:
            progress(record, done, outcome.n_total)

    with tracing.span("campaign.execute", cat="campaign", pending=len(pending),
                      workers=workers):
        if workers > 1 and len(pending) > 1:
            # Collect in completion order so every finished job is persisted
            # and reported immediately — an interrupted sweep keeps
            # everything that finished, even while a slow early job is still
            # running.  The initializer carries the observability switches
            # into the workers (robust under both fork and spawn).
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=obs.worker_init,
                initargs=(obs.state(),),
            ) as pool:
                futures = [pool.submit(execute_job, job.to_dict()) for job in pending]
                for future in as_completed(futures):
                    collect(future.result())
        else:
            for job in pending:
                collect(execute_job(job.to_dict()))

    if metrics.enabled():
        metrics.inc("campaign.jobs", outcome.n_total)
        metrics.inc("campaign.cache_hits", outcome.n_cached)
        metrics.inc("campaign.executed", outcome.n_executed)
        metrics.inc("campaign.failed", outcome.n_failed)
    return outcome


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Expand a campaign spec and run every grid cell not already stored."""
    return run_jobs(spec, spec.expand(), store=store, workers=workers, progress=progress)
