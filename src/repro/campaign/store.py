"""Persistent, content-addressed store of campaign job results.

Results live in an append-only ``results.jsonl`` under the campaign
directory, one JSON record per line keyed by the job's content hash.  The
append-only layout makes concurrent-ish writes and crashes benign (a torn
final line is skipped on load) and keeps the full history greppable; the
in-memory index is a plain dict, last write wins.  The campaign spec itself
is persisted as ``campaign.json`` so ``campaign status`` can diff the grid
against the results on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.campaign.spec import CampaignSpec, Job
from repro.gpu.simulator import SimulationResult


@dataclass
class JobRecord:
    """Outcome of one job: its result, or the captured failure."""

    job: Job
    status: str
    result: SimulationResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    #: True when this record was served from the store instead of simulated
    #: in the current invocation (never persisted).
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job completed successfully."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """The record as a JSON-serializable dict (one JSONL line)."""
        return {
            "job_hash": self.job.content_hash,
            "job": self.job.to_dict(),
            "status": self.status,
            "result": None if self.result is None else self.result.to_dict(),
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Reconstruct a record produced by :meth:`to_dict`."""
        result = data.get("result")
        return cls(
            job=Job.from_dict(data["job"]),
            status=data["status"],
            result=None if result is None else SimulationResult.from_dict(result),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


class ResultStore:
    """JSONL-backed map from job content hash to :class:`JobRecord`."""

    RESULTS_FILE = "results.jsonl"
    SPEC_FILE = "campaign.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / self.RESULTS_FILE
        self._index: dict[str, JobRecord] = {}
        self._load()

    def _load(self) -> None:
        if not self.results_path.exists():
            return
        with self.results_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    record = JobRecord.from_dict(data)
                except Exception:
                    # torn trailing write or foreign line — skip, don't die
                    continue
                self._index[record.job.content_hash] = record

    # ------------------------------------------------------------------ #
    # mapping interface

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, job_hash: str) -> bool:
        return job_hash in self._index

    def get(self, job_hash: str) -> JobRecord | None:
        """The stored record for a job hash, or None."""
        return self._index.get(job_hash)

    def records(self) -> list[JobRecord]:
        """All stored records, in load/insertion order."""
        return list(self._index.values())

    def lookup(self, job: Job) -> JobRecord | None:
        """Find a successful record that can serve ``job`` without simulating.

        This is the store's cache policy, shared by the executor and the
        ``campaign status`` CLI.  Besides the exact content hash, a
        timing-only job (``compute_error=False``) is served from its
        error-computing twin: that record holds a strict superset of the
        requested metrics (its ``error_percent`` is the real application
        error instead of the 0.0 a timing-only run reports).  Failed
        records are never served — they get retried.
        """
        record = self.get(job.content_hash)
        if record is not None and record.ok:
            return record
        if not job.compute_error:
            twin = replace(job, compute_error=True)
            record = self.get(twin.content_hash)
            if record is not None and record.ok:
                return record
        return None

    def put(self, record: JobRecord) -> None:
        """Persist a record (appended to disk, indexed in memory)."""
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict()) + "\n")
        self._index[record.job.content_hash] = record

    # ------------------------------------------------------------------ #
    # campaign spec persistence

    def save_spec(self, spec: CampaignSpec) -> None:
        """Write the campaign spec next to the results."""
        path = self.directory / self.SPEC_FILE
        path.write_text(json.dumps(spec.to_dict(), indent=2) + "\n", encoding="utf-8")

    def load_spec(self) -> CampaignSpec | None:
        """Read back the campaign spec, if one was saved."""
        path = self.directory / self.SPEC_FILE
        if not path.exists():
            return None
        return CampaignSpec.from_dict(json.loads(path.read_text(encoding="utf-8")))
