"""Persistent, content-addressed stores of campaign job results.

:class:`ResultStore` is the interface every backend implements — a map from
job content hash to :class:`JobRecord` plus campaign-spec persistence — and
also a dispatching constructor: ``ResultStore(path)`` opens the right
backend for the path (``backend=`` forces one explicitly).

Two backends exist:

* :class:`JSONLResultStore` — an append-only ``results.jsonl`` under the
  campaign directory, one JSON record per line.  Append-only writes make
  crashes benign (a torn final line is skipped on load) and keep the full
  history greppable; the in-memory index is a plain dict, last write wins.
  Re-runs grow the file unboundedly, so :meth:`JSONLResultStore.compact`
  rewrites it keeping only the record each hash currently resolves to.
* :class:`SQLiteResultStore` — a ``results.sqlite`` database in WAL mode
  with one row per job hash.  WAL plus a generous busy timeout makes it
  safe for many concurrent writer *processes* (large response-surface
  campaigns fanning out over hosts), which append-only JSONL semantics
  cannot guarantee.

The campaign spec itself is persisted next to the results (``campaign.json``
for JSONL, a ``meta`` table for SQLite) so ``campaign status`` can diff the
grid against the results on disk.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.campaign import faults
from repro.campaign.spec import CampaignSpec, Job
from repro.gpu.simulator import SimulationResult
from repro.obs.log import get_logger

_log = get_logger("campaign.store")

#: path suffixes that select the SQLite backend without an explicit ``backend=``
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: valid ``backend=`` / ``--store-backend`` names
STORE_BACKENDS = ("jsonl", "sqlite")


@dataclass
class JobRecord:
    """Outcome of one job: its result, or the captured failure."""

    job: Job
    status: str
    result: SimulationResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    #: True when this record was served from the store instead of simulated
    #: in the current invocation (never persisted).
    cached: bool = False
    #: where/when the job ran: hostname, pid, ISO-8601 ``started_at``.
    #: Forensics for ``campaign diff`` between hosts and groundwork for the
    #: distributed executor; empty for records from pre-provenance stores.
    provenance: dict = field(default_factory=dict)
    #: per-job :mod:`repro.obs.metrics` snapshot (collected only when the
    #: campaign ran with metrics enabled; empty otherwise)
    metrics: dict = field(default_factory=dict)
    #: per-job :mod:`repro.obs.tracing` span dicts (collected only when the
    #: campaign ran with tracing enabled; empty otherwise)
    spans: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the job completed successfully."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """The record as a JSON-serializable dict (one JSONL line).

        The observability fields are emitted only when present, so stores
        written with instrumentation off are byte-identical to pre-obs ones.
        """
        data = {
            "job_hash": self.job.content_hash,
            "job": self.job.to_dict(),
            "status": self.status,
            "result": None if self.result is None else self.result.to_dict(),
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }
        if self.provenance:
            data["provenance"] = dict(self.provenance)
        if self.metrics:
            data["metrics"] = self.metrics
        if self.spans:
            data["spans"] = self.spans
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Reconstruct a record produced by :meth:`to_dict`.

        Records from older stores carry no provenance/metrics/spans keys;
        they default to empty.
        """
        result = data.get("result")
        return cls(
            job=Job.from_dict(data["job"]),
            status=data["status"],
            result=None if result is None else SimulationResult.from_dict(result),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            provenance=dict(data.get("provenance") or {}),
            metrics=dict(data.get("metrics") or {}),
            spans=list(data.get("spans") or []),
        )


def _backend_class(path: str | Path, backend: str | None) -> type["ResultStore"]:
    """Resolve the store class for a path and optional explicit backend."""
    if backend is not None:
        try:
            return {"jsonl": JSONLResultStore, "sqlite": SQLiteResultStore}[backend]
        except KeyError:
            raise ValueError(
                f"unknown store backend {backend!r}; available: "
                f"{', '.join(STORE_BACKENDS)}"
            ) from None
    path = Path(path)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return SQLiteResultStore
    # A directory previously opened with backend="sqlite" keeps resolving to
    # the SQLite backend, so status/export/diff need no extra flag.
    if (path / SQLiteResultStore.RESULTS_FILE).exists():
        return SQLiteResultStore
    return JSONLResultStore


class ResultStore:
    """Map from job content hash to :class:`JobRecord` (backend interface).

    Instantiating ``ResultStore(path)`` directly dispatches to the backend
    the path implies: a ``.sqlite``/``.db`` suffix (or a directory already
    holding ``results.sqlite``) opens :class:`SQLiteResultStore`, everything
    else the JSONL store.  ``backend="jsonl"|"sqlite"`` forces a backend.
    """

    SPEC_FILE = "campaign.json"

    #: campaign directory (spec + results live under it)
    directory: Path
    #: the backing results file (JSONL or SQLite database)
    results_path: Path

    def __new__(cls, directory: str | Path, backend: str | None = None):
        if cls is ResultStore:
            cls = _backend_class(directory, backend)
        return object.__new__(cls)

    # ------------------------------------------------------------------ #
    # mapping interface (backends implement get/records/put/__len__)

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, job_hash: str) -> bool:
        return self.get(job_hash) is not None

    def get(self, job_hash: str) -> JobRecord | None:
        """The stored record for a job hash, or None."""
        raise NotImplementedError

    def records(self) -> list[JobRecord]:
        """All stored records, in first-insertion order."""
        raise NotImplementedError

    def put(self, record: JobRecord) -> None:
        """Persist a record (last write per job hash wins)."""
        raise NotImplementedError

    def compact(self) -> tuple[int, int]:
        """Reclaim storage; returns ``(records kept, entries dropped)``."""
        raise NotImplementedError

    #: backend label (``"jsonl"`` or ``"sqlite"``), set per subclass
    BACKEND = ""

    @property
    def backend_name(self) -> str:
        """The backend label (``"jsonl"`` or ``"sqlite"``)."""
        return self.BACKEND

    def lookup(self, job: Job) -> JobRecord | None:
        """Find a successful record that can serve ``job`` without simulating.

        This is the store's cache policy, shared by the executor and the
        ``campaign status`` CLI.  Besides the exact content hash, a
        timing-only job (``compute_error=False``) is served from its
        error-computing twin: that record holds a strict superset of the
        requested metrics (its ``error_percent`` is the real application
        error instead of the 0.0 a timing-only run reports).  Failed
        records are never served — they get retried.
        """
        record = self.get(job.content_hash)
        if record is not None and record.ok:
            return record
        if not job.compute_error:
            twin = replace(job, compute_error=True)
            record = self.get(twin.content_hash)
            if record is not None and record.ok:
                return record
        return None

    # ------------------------------------------------------------------ #
    # campaign spec persistence

    def save_spec(self, spec: CampaignSpec) -> None:
        """Write the campaign spec next to the results."""
        path = self.directory / self.SPEC_FILE
        path.write_text(json.dumps(spec.to_dict(), indent=2) + "\n", encoding="utf-8")

    def load_spec(self) -> CampaignSpec | None:
        """Read back the campaign spec, if one was saved."""
        path = self.directory / self.SPEC_FILE
        if not path.exists():
            return None
        return CampaignSpec.from_dict(json.loads(path.read_text(encoding="utf-8")))


def open_store(
    path: str | Path, backend: str | None = None, must_exist: bool = False
) -> ResultStore:
    """Open (creating if needed) the result store at ``path``.

    Equivalent to ``ResultStore(path, backend)``.  ``must_exist=True``
    refuses to open a path holding no results file — the right mode for
    read-only commands (``campaign diff``/``compact``), where silently
    creating an empty store would turn a typo'd path into a vacuous result.
    """
    if must_exist:
        # Probe the results file of the backend that will actually open —
        # not "any backend's" file, or a mismatched --store-backend flag
        # would pass the probe and then open a fresh empty store anyway.
        cls = _backend_class(path, backend)
        target = Path(path)
        if cls is SQLiteResultStore and target.suffix.lower() in SQLITE_SUFFIXES:
            results = target
        else:
            results = target / cls.RESULTS_FILE
        if not results.exists():
            raise FileNotFoundError(
                f"no {cls.BACKEND} result store at {path} ({results} is missing)"
            )
    return ResultStore(path, backend)


class JSONLResultStore(ResultStore):
    """Append-only JSONL-backed store (one JSON record per line)."""

    RESULTS_FILE = "results.jsonl"
    BACKEND = "jsonl"

    def __init__(self, directory: str | Path, backend: str | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / self.RESULTS_FILE
        self._index: dict[str, JobRecord] = {}
        #: lines that failed to parse on load (torn writes, foreign junk);
        #: they survive on disk until :meth:`compact` rewrites the file
        self.corrupt_lines = 0
        #: True when the file ends mid-record (writer killed mid-append);
        #: the next :meth:`put` then starts on a fresh line so the partial
        #: record cannot corrupt the one being written
        self._needs_newline = False
        self._load()

    def _load(self) -> None:
        if not self.results_path.exists():
            return
        raw_line = ""
        with self.results_path.open("r", encoding="utf-8") as handle:
            for lineno, raw_line in enumerate(handle, 1):
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    record = JobRecord.from_dict(data)
                except Exception:
                    # A worker killed mid-append leaves a truncated final
                    # line; a partial record is a casualty, not a disaster —
                    # tolerate it, say so, and let compact() drop it.
                    self.corrupt_lines += 1
                    _log.warning(
                        "%s:%d: skipping unreadable record (%d bytes, "
                        "truncated write?) — 'campaign compact' will drop it",
                        self.results_path, lineno, len(line),
                    )
                    continue
                self._index[record.job.content_hash] = record
        self._needs_newline = bool(raw_line) and not raw_line.endswith("\n")

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, job_hash: str) -> bool:
        return job_hash in self._index

    def get(self, job_hash: str) -> JobRecord | None:
        return self._index.get(job_hash)

    def records(self) -> list[JobRecord]:
        return list(self._index.values())

    def put(self, record: JobRecord) -> None:
        payload = json.dumps(record.to_dict())
        with self.results_path.open("a", encoding="utf-8") as handle:
            if self._needs_newline:
                # heal a torn trailing write: without this, appending would
                # glue the new record onto the partial line and lose both
                handle.write("\n")
                self._needs_newline = False
            if faults.fire(faults.TRUNCATE_STORE_WRITE):
                # fault injection: die mid-append — half the payload, no
                # newline, nothing indexed (the record is simply lost)
                handle.write(payload[: max(1, len(payload) // 2)])
                self._needs_newline = True
                self.corrupt_lines += 1
                _log.warning("fault: truncated store write for %s",
                             record.job.label())
                return
            handle.write(payload + "\n")
        self._index[record.job.content_hash] = record

    def compact(self) -> tuple[int, int]:
        """Rewrite the JSONL file keeping only the current record per hash.

        The in-memory index is already last-write-wins, but the append-only
        file grows by one line per re-run; compaction rewrites it from the
        index (atomically, via a temp file + rename) and reports how many
        stale lines were dropped — a count that includes any unreadable
        partial lines left behind by writers killed mid-append.
        """
        stale = 0
        if self.results_path.exists():
            with self.results_path.open("r", encoding="utf-8") as handle:
                stale = sum(1 for line in handle if line.strip())
        stale -= len(self._index)
        tmp_path = self.results_path.with_suffix(".jsonl.tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in self._index.values():
                handle.write(json.dumps(record.to_dict()) + "\n")
        os.replace(tmp_path, self.results_path)
        self.corrupt_lines = 0
        self._needs_newline = False
        return len(self._index), max(0, stale)


class SQLiteResultStore(ResultStore):
    """SQLite-backed store in WAL mode, safe for concurrent writer processes.

    Every record is one row keyed by job hash; ``put`` upserts inside its own
    transaction, so N processes appending simultaneously serialize on the WAL
    without losing records (the generous busy timeout absorbs lock contention
    instead of raising).  Reads always query the database, never a cached
    index — a record another process just wrote is immediately visible.
    """

    RESULTS_FILE = "results.sqlite"
    BACKEND = "sqlite"

    #: how long a writer waits on a locked database before giving up (s)
    BUSY_TIMEOUT_S = 60.0

    def __init__(self, directory: str | Path, backend: str | None = None) -> None:
        path = Path(directory)
        if path.suffix.lower() in SQLITE_SUFFIXES:
            self.directory = path.parent
            self.results_path = path
        else:
            self.directory = path
            self.results_path = path / self.RESULTS_FILE
        self.directory.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.results_path, timeout=self.BUSY_TIMEOUT_S)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " job_hash TEXT PRIMARY KEY,"
                " record TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY,"
                " value TEXT NOT NULL)"
            )

    @property
    def backend_name(self) -> str:
        return "sqlite"

    def close(self) -> None:
        """Close the underlying connection (also closed on GC)."""
        self._conn.close()

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def get(self, job_hash: str) -> JobRecord | None:
        row = self._conn.execute(
            "SELECT record FROM results WHERE job_hash = ?", (job_hash,)
        ).fetchone()
        if row is None:
            return None
        return JobRecord.from_dict(json.loads(row[0]))

    def records(self) -> list[JobRecord]:
        # ON CONFLICT DO UPDATE keeps the original rowid, so rowid order is
        # first-insertion order — the same order the JSONL index preserves.
        rows = self._conn.execute("SELECT record FROM results ORDER BY rowid").fetchall()
        return [JobRecord.from_dict(json.loads(row[0])) for row in rows]

    def put(self, record: JobRecord) -> None:
        payload = json.dumps(record.to_dict())
        with self._conn:
            self._conn.execute(
                "INSERT INTO results (job_hash, record) VALUES (?, ?)"
                " ON CONFLICT(job_hash) DO UPDATE SET record = excluded.record",
                (record.job.content_hash, payload),
            )

    def compact(self) -> tuple[int, int]:
        """Checkpoint the WAL and vacuum; row count is already minimal."""
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.execute("VACUUM")
        return len(self), 0

    # ------------------------------------------------------------------ #
    # campaign spec persistence (kept inside the database so a single
    # ``results.sqlite`` file is a self-describing campaign)

    _SPEC_KEY = "campaign_spec"

    def save_spec(self, spec: CampaignSpec) -> None:
        payload = json.dumps(spec.to_dict())
        with self._conn:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (self._SPEC_KEY, payload),
            )

    def load_spec(self) -> CampaignSpec | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (self._SPEC_KEY,)
        ).fetchone()
        if row is None:
            return None
        return CampaignSpec.from_dict(json.loads(row[0]))
