"""Deterministic fault injection for distributed-campaign robustness tests.

A fault *site* is a named point in the code where something can be made to
go wrong on purpose: the remote worker about to execute a leased job
(``kill-worker-mid-job``), the coordinator about to acknowledge a completed
job (``drop-response``), the worker heartbeat loop (``stall-heartbeat``),
the JSONL store appending a record (``truncate-store-write``).  Each site
calls :func:`fire` and acts only when it returns True, so production runs
pay one dict lookup per site.

Which invocation triggers is controlled by the ``REPRO_FAULT_SPEC``
environment variable — a comma-separated list of ``site[:trigger]`` rules::

    REPRO_FAULT_SPEC="kill-worker-mid-job"        # 1st invocation
    REPRO_FAULT_SPEC="kill-worker-mid-job:2"      # exactly the 2nd
    REPRO_FAULT_SPEC="drop-response:2+"           # the 2nd and every later one
    REPRO_FAULT_SPEC="stall-heartbeat:*,drop-response:1"   # several rules

The spec is read per process, so a test can arm one worker subprocess with
a kill rule while its siblings run clean.  Invocation counting is the only
state, which makes every injected failure deterministic and replayable —
no random drops, no timing dependence.  Tests running in-process install an
injector programmatically with :func:`activate`.
"""

from __future__ import annotations

import os

__all__ = [
    "KILL_WORKER_MID_JOB",
    "DROP_RESPONSE",
    "STALL_HEARTBEAT",
    "TRUNCATE_STORE_WRITE",
    "ENV_VAR",
    "FaultInjector",
    "activate",
    "active",
    "fire",
]

#: the worker SIGKILLs itself right after leasing, before completing a job
KILL_WORKER_MID_JOB = "kill-worker-mid-job"
#: the coordinator refuses a ``/complete`` with a 503 instead of processing it
DROP_RESPONSE = "drop-response"
#: the worker's heartbeat thread goes permanently silent (lease will expire)
STALL_HEARTBEAT = "stall-heartbeat"
#: the JSONL store writes half a record with no newline (kill mid-append)
TRUNCATE_STORE_WRITE = "truncate-store-write"

#: environment variable holding the fault spec for a process
ENV_VAR = "REPRO_FAULT_SPEC"


class FaultInjector:
    """Parsed fault rules plus per-site invocation counters.

    ``spec`` is the ``REPRO_FAULT_SPEC`` syntax documented in the module
    docstring.  An empty spec yields an injector that never fires.
    """

    def __init__(self, spec: str = "") -> None:
        self._rules: dict[str, tuple[str, int]] = {}
        self.counts: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        for token in (t.strip() for t in spec.split(",")):
            if not token:
                continue
            site, _, trigger = token.partition(":")
            trigger = trigger or "1"
            if trigger == "*":
                rule = ("always", 0)
            elif trigger.endswith("+"):
                rule = ("from", int(trigger[:-1]))
            else:
                rule = ("at", int(trigger))
            if rule[0] != "always" and rule[1] < 1:
                raise ValueError(f"fault trigger must be >= 1 in {token!r}")
            self._rules[site.strip()] = rule

    def fire(self, site: str) -> bool:
        """Count one invocation of ``site``; True when its rule triggers."""
        rule = self._rules.get(site)
        if rule is None:
            return False
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        kind, nth = rule
        triggered = (
            kind == "always"
            or (kind == "from" and count >= nth)
            or (kind == "at" and count == nth)
        )
        if triggered:
            self.fired[site] = self.fired.get(site, 0) + 1
        return triggered


_injector: FaultInjector | None = None


def active() -> FaultInjector:
    """The process's injector (lazily built from ``REPRO_FAULT_SPEC``)."""
    global _injector
    if _injector is None:
        _injector = FaultInjector(os.environ.get(ENV_VAR, ""))
    return _injector


def activate(spec: str) -> FaultInjector:
    """Install (and return) an injector programmatically — for tests."""
    global _injector
    _injector = FaultInjector(spec)
    return _injector


def fire(site: str) -> bool:
    """Module-level shorthand for ``active().fire(site)``."""
    return active().fire(site)
