"""Job execution: the function a campaign worker process runs.

Kept in its own module so :func:`execute_job` is importable at top level —
a requirement for ``ProcessPoolExecutor`` under the ``spawn`` start method —
and so the campaign package depends only on the core/gpu/workload layers
(the experiment harness builds on the campaign engine, not the other way
around).
"""

from __future__ import annotations

import os
import socket
import time
import traceback
from datetime import datetime, timezone

from repro.campaign.spec import (
    BASELINE_SCHEME,
    KNOWN_SCHEMES,
    LOSSLESS_SCHEMES,
    SCHEME_VARIANTS,
    Job,
    overrides_to_config,
)
from repro.obs import metrics, tracing
from repro.compression.e2mc import E2MCCompressor
from repro.compression.registry import get_compressor
from repro.core.config import SLCConfig
from repro.core.slc import SLCCompressor
from repro.gpu.backends import CompressionBackend, LosslessBackend, SLCBackend
from repro.gpu.config import GPUConfig
from repro.gpu.simulator import GPUSimulator, SimulationResult
from repro.workloads.registry import get_workload


def build_backend(
    scheme: str,
    config: GPUConfig,
    lossy_threshold_bytes: int = 16,
    mag_bytes: int | None = None,
    batch_codec: bool = True,
) -> CompressionBackend:
    """Build the memory-controller backend for a scheme label.

    ``"E2MC"`` yields the lossless baseline (46/20-cycle latencies from the
    GPU latency config); the other lossless labels (``"BDI"``, ``"FPC"``,
    ``"CPACK"``, ``"BPC"``) come from the compression registry with the
    registry's per-scheme latencies; the TSLC labels yield an SLC backend of
    the matching variant (60/20 cycles).  ``batch_codec=False`` routes SLC
    batched stores through the scalar per-block payload path (the codec
    microbenchmark's reference).
    """
    mag = mag_bytes if mag_bytes is not None else config.mag_bytes
    latency = config.latency
    if scheme == BASELINE_SCHEME:
        compressor = E2MCCompressor(
            block_size_bytes=config.block_size_bytes,
            symbol_bytes=2,
            num_pdw=4,
        )
        return LosslessBackend(
            compressor,
            mag_bytes=mag,
            compress_cycles=latency.e2mc_compress_cycles,
            decompress_cycles=latency.e2mc_decompress_cycles,
        )
    if scheme in LOSSLESS_SCHEMES:
        compressor = get_compressor(
            scheme, block_size_bytes=config.block_size_bytes
        )
        # latencies resolve from the registry inside LosslessBackend
        return LosslessBackend(compressor, mag_bytes=mag)
    if scheme not in SCHEME_VARIANTS:
        raise KeyError(
            f"unknown scheme {scheme!r}; available: {', '.join(KNOWN_SCHEMES)}"
        )
    slc_config = SLCConfig(
        block_size_bytes=config.block_size_bytes,
        mag_bytes=mag,
        lossy_threshold_bytes=lossy_threshold_bytes,
        variant=SCHEME_VARIANTS[scheme],
    )
    return SLCBackend(
        SLCCompressor(slc_config),
        compress_cycles=latency.tslc_compress_cycles,
        decompress_cycles=latency.tslc_decompress_cycles,
        batch_codec=batch_codec,
    )


def default_chunk_accesses() -> int | None:
    """The replay chunk budget from ``REPRO_CHUNK_ACCESSES`` (unset → None).

    Campaign pool workers and distributed workers inherit the environment,
    so a single variable bounds replay memory for a whole fleet without
    plumbing through job hashes (chunking never changes results, so it must
    not participate in result identity).  A malformed or non-positive value
    raises rather than silently running unbounded.
    """
    raw = os.environ.get("REPRO_CHUNK_ACCESSES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_CHUNK_ACCESSES must be a positive integer, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ValueError(
            f"REPRO_CHUNK_ACCESSES must be a positive integer, got {raw!r}"
        )
    return value


def simulate_job(
    job: Job,
    batch_store: bool = True,
    replay_mode: str = "vectorized",
    batch_codec: bool = True,
    chunk_accesses: int | None = None,
    payload_digest: bool = False,
) -> SimulationResult:
    """Run one job to completion and return its simulation result.

    Args:
        job: the campaign job description.
        batch_store: route the simulator's host-to-device store phase through
            the vectorized analysis kernels (:mod:`repro.kernels`).  Results
            are identical either way; the kernels microbenchmark flips this
            off to measure the scalar path.
        replay_mode: trace-replay engine for the kernel-execution phase —
            ``"vectorized"`` (default, :mod:`repro.replay`) or ``"scalar"``
            (the per-access reference loop).  Results are identical either
            way; the replay microbenchmark flips this to measure both.
        batch_codec: materialize stored payload bytes with the vectorized
            payload codec (:mod:`repro.kernels.codec`) instead of per-block
            ``apply_decision`` calls.  Results are identical either way; the
            codec microbenchmark flips this off to measure the scalar path.
        chunk_accesses: bounded-memory replay chunk budget (compiled RLE
            entries per window; see :class:`GPUSimulator`).  ``None`` falls
            back to the ``REPRO_CHUNK_ACCESSES`` environment variable, which
            is how ``--chunk-accesses`` reaches pool and distributed
            workers.  Results are identical either way.
        payload_digest: record ``extra_metrics["payload_sha256"]`` over the
            final stored state (see :class:`GPUSimulator`); used by the
            golden-result regression suite.
    """
    config = overrides_to_config(job.config_overrides)
    if chunk_accesses is None:
        chunk_accesses = default_chunk_accesses()
    simulator = GPUSimulator(
        config=config,
        batch_store=batch_store,
        replay_mode=replay_mode,
        chunk_accesses=chunk_accesses,
        payload_digest=payload_digest,
    )
    kwargs: dict = {"seed": job.seed}
    if job.scale is not None:
        kwargs["scale"] = job.scale
    workload = get_workload(job.workload, **kwargs)
    backend = build_backend(
        job.scheme,
        config,
        lossy_threshold_bytes=job.lossy_threshold_bytes,
        mag_bytes=job.mag_bytes,
        batch_codec=batch_codec,
    )
    return simulator.run(workload, backend, compute_error=job.compute_error)


def execute_job(job_dict: dict) -> dict:
    """Worker entry point: run one job, never raise.

    Takes and returns plain dicts so the payload crossing the process
    boundary is cheap to pickle and identical to what the store persists.
    Failures are captured as an ``"error"`` record with the traceback, so
    one bad job never kills a sweep.

    Every record carries provenance (hostname, pid, ISO-8601 start time).
    When observability is enabled (see :mod:`repro.obs`), the job runs
    under a root span and the payload additionally carries the spans and
    the per-job metrics snapshot, which the executor merges back into the
    parent process.
    """
    job = Job.from_dict(job_dict)
    provenance = {
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "started_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    metrics_on = metrics.enabled()
    if metrics_on:
        # Pool workers are long-lived: isolate this job's snapshot from the
        # previous job's (and, in-process, from campaign-level counters).
        metrics.clear()
    tracking_memory = metrics.start_tracemalloc()
    span_mark = tracing.mark()
    start = time.perf_counter()
    try:
        with tracing.span(f"job:{job.label()}", cat="job",
                          workload=job.workload, scheme=job.scheme):
            result = simulate_job(job)
        status, result_dict, error = "ok", result.to_dict(), None
    except Exception:
        status, result_dict, error = "error", None, traceback.format_exc()
    elapsed = time.perf_counter() - start
    if tracking_memory:
        metrics.stop_tracemalloc()
    payload = {
        "job_hash": job.content_hash,
        "job": job.to_dict(),
        "status": status,
        "result": result_dict,
        "error": error,
        "elapsed_s": elapsed,
        "provenance": provenance,
    }
    if metrics_on:
        metrics.observe("job.elapsed_s", elapsed)
        payload["metrics"] = metrics.snapshot()
        metrics.clear()
    if tracing.enabled():
        payload["spans"] = tracing.drain(span_mark)
    return payload
