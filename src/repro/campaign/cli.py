"""``python -m repro`` / ``repro`` — the campaign command-line interface.

Subcommands::

    repro campaign run     expand a grid and simulate it (parallel, cached)
    repro campaign status  compare the stored spec against results on disk
    repro campaign export  flatten stored results to CSV
    repro version          print the package version

A campaign directory is self-describing: ``campaign.json`` holds the spec,
``results.jsonl`` the content-addressed results.  Re-running ``campaign
run`` on the same directory only simulates grid cells that are missing.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections import deque

from repro._version import __version__
from repro.campaign.executor import run_campaign
from repro.campaign.spec import KNOWN_SCHEMES, CampaignSpec
from repro.campaign.store import JobRecord, ResultStore
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

#: flat CSV columns: job axes then headline result metrics
EXPORT_COLUMNS = (
    "workload",
    "scheme",
    "lossy_threshold_bytes",
    "mag_bytes",
    "scale",
    "seed",
    "config_overrides",
    "status",
    "exec_time_s",
    "compute_time_s",
    "memory_time_s",
    "error_percent",
    "total_bursts",
    "dram_bytes",
    "l2_hit_rate",
    "stored_blocks",
    "lossy_blocks",
    "energy_j",
    "edp",
    "elapsed_s",
)


def _comma_list(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _parse_mags(raw: str) -> tuple[int | None, ...]:
    mags: list[int | None] = []
    for item in _comma_list(raw):
        mags.append(None if item.lower() in ("config", "default") else int(item))
    return tuple(mags)


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        name=args.name,
        workloads=tuple(w.upper() for w in _comma_list(args.workloads)),
        schemes=tuple(_comma_list(args.schemes)),
        lossy_thresholds=tuple(int(t) for t in _comma_list(args.thresholds)),
        mags=_parse_mags(args.mags),
        scales=(args.scale,),
        seeds=tuple(int(s) for s in _comma_list(args.seeds)),
        compute_error=not args.no_error,
    )


def _format_duration(seconds: float) -> str:
    """Compact duration: ``42s`` below a minute, ``m:ss`` / ``h:mm:ss`` above."""
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}:{secs:02d}"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


class ProgressReporter:
    """Per-job progress lines with a rolling-mean ETA for the campaign.

    Long sweeps print ``[done/total]`` plus, once at least one job has
    actually simulated, the rolling mean job time and the estimated time
    remaining (``remaining jobs x mean / workers``).  Cached cells and
    failed jobs don't feed the mean — both finish much faster than a real
    simulation and would make the ETA wildly optimistic.

    Args:
        workers: worker process count the ETA divides by.
        window: number of recent job times in the rolling mean.
        stream: output stream (stderr by default, like the progress lines).
    """

    def __init__(self, workers: int = 1, window: int = 16, stream=None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.workers = max(1, workers)
        self._recent: deque[float] = deque(maxlen=window)
        self._stream = stream

    def __call__(self, record: JobRecord, done: int, total: int) -> None:
        """The :data:`~repro.campaign.executor.ProgressFn` hook."""
        if record.cached:
            detail = "cached"
        elif record.ok:
            detail = f"ran in {record.elapsed_s:.2f}s"
        else:
            detail = "FAILED"
        if not record.cached and record.ok:
            # Failed jobs abort early; their elapsed time would drag the
            # mean toward zero and make the ETA wildly optimistic.
            self._recent.append(record.elapsed_s)
        eta = ""
        remaining = total - done
        if self._recent and remaining:
            mean_s = sum(self._recent) / len(self._recent)
            estimate = remaining * mean_s / self.workers
            eta = f" (avg {mean_s:.2f}s/job, ETA {_format_duration(estimate)})"
        stream = self._stream if self._stream is not None else sys.stderr
        print(f"[{done}/{total}] {record.job.label()}: {detail}{eta}", file=stream)


def cmd_run(args: argparse.Namespace) -> int:
    """``campaign run``: expand, simulate, persist, summarize."""
    try:
        spec = _spec_from_args(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    store = ResultStore(args.dir)
    store.save_spec(spec)
    progress = None if args.quiet else ProgressReporter(workers=args.workers)
    outcome = run_campaign(spec, store=store, workers=args.workers, progress=progress)
    print(
        f"campaign '{spec.name}': {outcome.n_total} jobs — "
        f"{outcome.n_cached} cached, {outcome.n_executed} executed, "
        f"{outcome.n_failed} failed ({store.directory})"
    )
    for record in outcome.failures():
        tail = (record.error or "").strip().splitlines()[-1:]
        print(f"  FAILED {record.job.label()}: {tail[0] if tail else '?'}")
    return 1 if outcome.n_failed else 0


def cmd_status(args: argparse.Namespace) -> int:
    """``campaign status``: diff the saved spec against stored results."""
    store = ResultStore(args.dir)
    spec = store.load_spec()
    if spec is None:
        print(f"no campaign.json under {store.directory} "
              f"({len(store)} results on disk)")
        return 1
    jobs = spec.expand()
    ok = failed = missing = 0
    for job in jobs:
        # same cache policy as the executor (incl. the compute_error twin)
        record = store.lookup(job)
        if record is not None:
            ok += 1
        elif (stored := store.get(job.content_hash)) is not None and not stored.ok:
            failed += 1
            print(f"  FAILED {job.label()}")
        else:
            missing += 1
    print(
        f"campaign '{spec.name}': {len(jobs)} jobs — "
        f"{ok} complete, {failed} failed, {missing} missing"
    )
    return 0 if (failed == 0 and missing == 0) else 1


def _export_row(record: JobRecord) -> dict:
    job = record.job
    row = {
        "workload": job.workload,
        "scheme": job.scheme,
        "lossy_threshold_bytes": job.lossy_threshold_bytes,
        "mag_bytes": job.mag_bytes,
        "scale": job.scale,
        "seed": job.seed,
        "config_overrides": json.dumps(dict(job.config_overrides), sort_keys=True)
        if job.config_overrides
        else "",
        "status": record.status,
        "elapsed_s": record.elapsed_s,
    }
    if record.result is not None:
        result = record.result
        row.update(
            exec_time_s=result.exec_time_s,
            compute_time_s=result.compute_time_s,
            memory_time_s=result.memory_time_s,
            error_percent=result.error_percent,
            total_bursts=result.total_bursts,
            dram_bytes=result.dram_bytes,
            l2_hit_rate=result.l2_hit_rate,
            stored_blocks=result.stored_blocks,
            lossy_blocks=result.lossy_blocks,
            energy_j=result.energy_j,
            edp=result.edp,
        )
    return row


def cmd_export(args: argparse.Namespace) -> int:
    """``campaign export``: flatten stored results to CSV."""
    store = ResultStore(args.dir)
    records = store.records()
    handle = sys.stdout if args.csv == "-" else open(args.csv, "w", newline="")
    try:
        writer = csv.DictWriter(handle, fieldnames=EXPORT_COLUMNS, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(_export_row(record))
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.csv != "-":
        print(f"wrote {len(records)} rows to {args.csv}")
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    """``version``: print the package version."""
    print(__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLC reproduction toolkit (Lal/Lucas/Juurlink, DATE'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    version = sub.add_parser("version", help="print the package version")
    version.set_defaults(func=cmd_version)

    campaign = sub.add_parser("campaign", help="run and inspect simulation sweeps")
    campaign_sub = campaign.add_subparsers(dest="subcommand", required=True)

    run = campaign_sub.add_parser(
        "run", help="expand a parameter grid and simulate every missing cell"
    )
    run.add_argument("--dir", required=True, help="campaign directory (spec + results)")
    run.add_argument("--name", default="campaign", help="campaign name")
    run.add_argument(
        "--workloads",
        default=",".join(PAPER_WORKLOAD_ORDER),
        help="comma-separated benchmarks (default: all nine, paper order)",
    )
    run.add_argument(
        "--schemes",
        default=",".join(KNOWN_SCHEMES),
        help="comma-separated schemes (default: E2MC + all TSLC variants)",
    )
    run.add_argument(
        "--thresholds", default="16", help="comma-separated lossy thresholds in bytes"
    )
    run.add_argument(
        "--mags",
        default="config",
        help="comma-separated MAGs in bytes, or 'config' for the GPU default",
    )
    run.add_argument(
        "--scale", type=float, default=None, help="workload input scale (default: native)"
    )
    run.add_argument("--seeds", default="2019", help="comma-separated RNG seeds")
    run.add_argument("--workers", type=int, default=1, help="worker process count")
    run.add_argument(
        "--no-error",
        action="store_true",
        help="skip re-running kernels on degraded inputs (timing-only sweep)",
    )
    run.add_argument("--quiet", action="store_true", help="suppress per-job progress")
    run.set_defaults(func=cmd_run)

    status = campaign_sub.add_parser(
        "status", help="compare the saved spec against results on disk"
    )
    status.add_argument("--dir", required=True, help="campaign directory")
    status.set_defaults(func=cmd_status)

    export = campaign_sub.add_parser("export", help="flatten stored results to CSV")
    export.add_argument("--dir", required=True, help="campaign directory")
    export.add_argument("--csv", default="-", help="output path, or '-' for stdout")
    export.set_defaults(func=cmd_export)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (console script ``repro`` / ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
