"""``python -m repro`` / ``repro`` — the campaign command-line interface.

Subcommands::

    repro campaign run      expand a grid and simulate it (parallel, cached)
    repro campaign serve    coordinate the grid over remote lease workers
    repro campaign worker   join a coordinator and execute leased jobs
    repro campaign status   compare the stored spec against results on disk
    repro campaign export   flatten stored results to CSV
    repro campaign diff     compare two stores cell-by-cell (drift check)
    repro campaign compact  drop stale JSONL lines / vacuum a SQLite store
    repro study ...         run/list/export declarative studies
    repro bench ...         perf-trajectory snapshots and the regression gate
    repro version           print the package version

The top-level ``--log-level``/``-q`` flags control the progress and
diagnostic lines (always stderr, via the ``repro`` logger hierarchy);
stdout stays reserved for command output.  ``campaign run``/``study run``
accept ``--trace out.json`` (Chrome trace-event timeline across the main
process and every worker) and ``campaign run`` ``--metrics`` (per-job
counter/value snapshots, aggregated by ``campaign status --metrics``).

A campaign directory is self-describing: ``campaign.json`` holds the spec,
``results.jsonl`` (or ``results.sqlite`` with ``--store-backend sqlite``)
the content-addressed results.  Re-running ``campaign run`` on the same
directory only simulates grid cells that are missing.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
import time
from collections import deque

from repro._version import __version__
from repro.campaign.executor import CampaignResult, run_campaign
from repro.campaign.remote import run_worker
from repro.campaign.service import CampaignCoordinator
from repro.campaign.spec import PAPER_SCHEMES, CampaignSpec
from repro.campaign.store import STORE_BACKENDS, JobRecord, ResultStore, open_store
from repro.obs import metrics, tracing
from repro.obs.cli import add_bench_parser, enable_observability, finish_trace
from repro.obs.log import LOG_LEVELS, get_logger, setup_logging
from repro.studies.cli import add_study_parser
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

_log = get_logger("campaign")

#: default sink of per-job progress lines (stderr via the repro logger)
_progress_log = get_logger("campaign.progress")

#: flat CSV columns: job axes then headline result metrics
EXPORT_COLUMNS = (
    "workload",
    "scheme",
    "lossy_threshold_bytes",
    "mag_bytes",
    "scale",
    "seed",
    "config_overrides",
    "status",
    "exec_time_s",
    "compute_time_s",
    "memory_time_s",
    "error_percent",
    "total_bursts",
    "dram_bytes",
    "l2_hit_rate",
    "stored_blocks",
    "lossy_blocks",
    "energy_j",
    "edp",
    "elapsed_s",
)


def _comma_list(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _parse_mags(raw: str) -> tuple[int | None, ...]:
    mags: list[int | None] = []
    for item in _comma_list(raw):
        mags.append(None if item.lower() in ("config", "default") else int(item))
    return tuple(mags)


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        name=args.name,
        workloads=tuple(w.upper() for w in _comma_list(args.workloads)),
        schemes=tuple(_comma_list(args.schemes)),
        lossy_thresholds=tuple(int(t) for t in _comma_list(args.thresholds)),
        mags=_parse_mags(args.mags),
        scales=(args.scale,),
        seeds=tuple(int(s) for s in _comma_list(args.seeds)),
        compute_error=not args.no_error,
    )


def _format_duration(seconds: float) -> str:
    """Compact duration: ``42s`` below a minute, ``m:ss`` / ``h:mm:ss`` above."""
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}:{secs:02d}"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


class ProgressReporter:
    """Per-job progress lines with a rolling-mean ETA for the campaign.

    Long sweeps print ``[done/total]`` plus a summary suffix: once at least
    one job has actually simulated, the rolling mean job time and the
    estimated time remaining (``remaining jobs x mean / workers``), and
    always the cache-hit count so far (when any) and the campaign's total
    wall time.  Cached cells and failed jobs don't feed the mean — both
    finish much faster than a real simulation and would make the ETA wildly
    optimistic.

    Args:
        workers: worker process count the ETA divides by.
        window: number of recent job times in the rolling mean.
        stream: output stream (stderr by default, like the progress lines).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, workers: int = 1, window: int = 16, stream=None,
                 clock=time.monotonic) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.workers = max(1, workers)
        self._recent: deque[float] = deque(maxlen=window)
        self._stream = stream
        self._clock = clock
        self._start = clock()
        self.n_cached = 0

    @property
    def wall_time_s(self) -> float:
        """Seconds since the reporter (i.e. the campaign) started."""
        return self._clock() - self._start

    def __call__(self, record: JobRecord, done: int, total: int) -> None:
        """The :data:`~repro.campaign.executor.ProgressFn` hook."""
        if record.cached:
            detail = "cached"
            self.n_cached += 1
        elif record.ok:
            detail = f"ran in {record.elapsed_s:.2f}s"
        else:
            detail = "FAILED"
        if not record.cached and record.ok:
            # Failed jobs abort early; their elapsed time would drag the
            # mean toward zero and make the ETA wildly optimistic.
            self._recent.append(record.elapsed_s)
        parts = []
        remaining = total - done
        if self._recent and remaining:
            mean_s = sum(self._recent) / len(self._recent)
            estimate = remaining * mean_s / self.workers
            parts.append(f"avg {mean_s:.2f}s/job, ETA {_format_duration(estimate)}")
        if self.n_cached:
            parts.append(f"{self.n_cached} cached")
        parts.append(f"{_format_duration(self.wall_time_s)} elapsed")
        suffix = f" ({', '.join(parts)})"
        line = f"[{done}/{total}] {record.job.label()}: {detail}{suffix}"
        if self._stream is not None:
            print(line, file=self._stream)
        else:
            # Default path: the repro logger (stderr), so --log-level/-q
            # controls progress verbosity like every other line.
            _progress_log.info(line)


def _summarize(outcome: CampaignResult, spec: CampaignSpec, store: ResultStore,
               wall: str, args: argparse.Namespace) -> int:
    """Shared ``run``/``serve`` epilogue: summary lines, metrics, exit code."""
    if outcome.interrupted:
        # Graceful Ctrl-C: everything that finished is already persisted;
        # tell the user how to pick the campaign back up.
        print(
            f"campaign '{spec.name}' interrupted: "
            f"{len(outcome.records)}/{outcome.n_total} cells in the store "
            f"({outcome.n_cached} cached) after {wall} — re-run the same "
            f"command to resume from {store.directory}"
        )
        return 130
    print(
        f"campaign '{spec.name}': {outcome.n_total} jobs — "
        f"{outcome.n_cached} cached, {outcome.n_executed} executed, "
        f"{outcome.n_failed} failed in {wall} ({store.directory})"
    )
    if outcome.queue_stats:
        stats = outcome.queue_stats
        print(
            f"  distributed: {stats['leases_granted']} leases granted, "
            f"{stats['leases_expired']} expired, {stats['retries']} re-leased, "
            f"{stats['duplicates']} duplicate completions, "
            f"{stats['workers_joined']} workers "
            f"({stats['workers_quarantined']} quarantined)"
        )
    for record in outcome.failures():
        tail = (record.error or "").strip().splitlines()[-1:]
        print(f"  FAILED {record.job.label()}: {tail[0] if tail else '?'}")
    if getattr(args, "metrics", False):
        merged = metrics.merge(
            metrics.snapshot(),
            *(r.metrics for r in outcome.records.values() if r.metrics),
        )
        print("campaign metrics:")
        print(metrics.format_metrics(merged))
    finish_trace(args)
    return 1 if (outcome.n_failed or outcome.n_missing) else 0


def _apply_chunk_accesses(args: argparse.Namespace) -> None:
    """Export ``--chunk-accesses`` as ``REPRO_CHUNK_ACCESSES``.

    The environment is how the budget reaches pool workers (fork and spawn)
    and leased remote workers without touching job hashes — chunking never
    changes results, so it must stay out of result identity.
    """
    value = getattr(args, "chunk_accesses", None)
    if value is None:
        return
    if value <= 0:
        raise ValueError("--chunk-accesses must be positive")
    os.environ["REPRO_CHUNK_ACCESSES"] = str(value)


def cmd_run(args: argparse.Namespace) -> int:
    """``campaign run``: expand, simulate, persist, summarize."""
    try:
        _apply_chunk_accesses(args)
        spec = _spec_from_args(args)
        store = ResultStore(args.dir, args.store_backend)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        _log.error("error: %s", message)
        return 2
    store.save_spec(spec)
    enable_observability(args)
    start = time.monotonic()
    progress = None if args.quiet else ProgressReporter(workers=args.workers)
    with tracing.span("campaign.run", cat="campaign", campaign=spec.name):
        outcome = run_campaign(
            spec, store=store, workers=args.workers, progress=progress,
            job_timeout=args.job_timeout,
        )
    wall = _format_duration(time.monotonic() - start)
    return _summarize(outcome, spec, store, wall, args)


def cmd_serve(args: argparse.Namespace) -> int:
    """``campaign serve``: coordinate the grid over remote lease workers."""
    try:
        # Applies to the coordinator's in-process fallback pool; remote
        # workers set their own budget via 'campaign worker --chunk-accesses'.
        _apply_chunk_accesses(args)
        spec = _spec_from_args(args)
        store = ResultStore(args.dir, args.store_backend)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        _log.error("error: %s", message)
        return 2
    store.save_spec(spec)
    enable_observability(args)
    start = time.monotonic()
    progress = None if args.quiet else ProgressReporter()
    coordinator = CampaignCoordinator(
        spec.expand(),
        spec=spec,
        store=store,
        host=args.host,
        port=args.port,
        lease_timeout_s=args.lease_timeout,
        max_attempts=args.max_attempts,
        quarantine_strikes=args.quarantine_strikes,
        job_timeout=args.job_timeout,
        grace_s=args.grace,
        fallback_workers=args.fallback_workers,
        progress=progress,
    )
    coordinator.start()
    print(f"coordinator listening on {coordinator.url} "
          f"— start workers with: repro campaign worker --url {coordinator.url}",
          file=sys.stderr)
    try:
        with tracing.span("campaign.run", cat="campaign", campaign=spec.name):
            outcome = coordinator.serve()
    except KeyboardInterrupt:
        coordinator.stop()
        outcome = coordinator.outcome
        outcome.interrupted = True
    wall = _format_duration(time.monotonic() - start)
    return _summarize(outcome, spec, store, wall, args)


def cmd_worker(args: argparse.Namespace) -> int:
    """``campaign worker``: join a coordinator and execute leased jobs."""
    try:
        _apply_chunk_accesses(args)
    except ValueError as exc:
        _log.error("error: %s", exc)
        return 2
    store = ResultStore(args.dir, args.store_backend) if args.dir else None
    try:
        summary = run_worker(
            args.url,
            worker_id=args.worker_id,
            store=store,
            poll_s=args.poll,
            max_idle_s=args.max_idle,
        )
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(
        f"worker {summary.worker_id} ({summary.reason}): "
        f"{summary.executed} executed, {summary.failed} failed, "
        f"{summary.duplicates} duplicate, "
        f"{summary.transport_retries} transport retries"
    )
    return 0 if summary.reason in ("done", "idle", "coordinator gone") else 1


def cmd_status(args: argparse.Namespace) -> int:
    """``campaign status``: diff the saved spec against stored results."""
    store = ResultStore(args.dir, args.store_backend)
    spec = store.load_spec()
    if spec is None:
        print(f"no campaign.json under {store.directory} "
              f"({len(store)} results on disk)")
        return 1
    jobs = spec.expand()
    ok = failed = missing = 0
    for job in jobs:
        # same cache policy as the executor (incl. the compute_error twin)
        record = store.lookup(job)
        if record is not None:
            ok += 1
        elif (stored := store.get(job.content_hash)) is not None and not stored.ok:
            failed += 1
            print(f"  FAILED {job.label()}")
        else:
            missing += 1
    print(
        f"campaign '{spec.name}': {len(jobs)} jobs — "
        f"{ok} complete, {failed} failed, {missing} missing"
    )
    if args.metrics:
        snapshots = [r.metrics for r in store.records() if r.metrics]
        if snapshots:
            print(f"stored metrics ({len(snapshots)} records):")
            print(metrics.format_metrics(metrics.merge(*snapshots)))
        else:
            print("stored metrics: none (run with --metrics to collect)")
    return 0 if (failed == 0 and missing == 0) else 1


def _export_row(record: JobRecord) -> dict:
    job = record.job
    row = {
        "workload": job.workload,
        "scheme": job.scheme,
        "lossy_threshold_bytes": job.lossy_threshold_bytes,
        "mag_bytes": job.mag_bytes,
        "scale": job.scale,
        "seed": job.seed,
        "config_overrides": json.dumps(dict(job.config_overrides), sort_keys=True)
        if job.config_overrides
        else "",
        "status": record.status,
        "elapsed_s": record.elapsed_s,
    }
    if record.result is not None:
        result = record.result
        row.update(
            exec_time_s=result.exec_time_s,
            compute_time_s=result.compute_time_s,
            memory_time_s=result.memory_time_s,
            error_percent=result.error_percent,
            total_bursts=result.total_bursts,
            dram_bytes=result.dram_bytes,
            l2_hit_rate=result.l2_hit_rate,
            stored_blocks=result.stored_blocks,
            lossy_blocks=result.lossy_blocks,
            energy_j=result.energy_j,
            edp=result.edp,
        )
    return row


def cmd_export(args: argparse.Namespace) -> int:
    """``campaign export``: flatten stored results to CSV."""
    store = ResultStore(args.dir, args.store_backend)
    records = store.records()
    handle = sys.stdout if args.csv == "-" else open(args.csv, "w", newline="")
    try:
        writer = csv.DictWriter(handle, fieldnames=EXPORT_COLUMNS, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(_export_row(record))
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.csv != "-":
        print(f"wrote {len(records)} rows to {args.csv}")
    return 0


#: result fields campaign diff compares (counters first, then the digest)
DIFF_COUNTER_FIELDS = (
    "exec_time_s",
    "compute_time_s",
    "memory_time_s",
    "total_bursts",
    "read_bursts",
    "write_bursts",
    "dram_bytes",
    "dram_row_misses",
    "l2_accesses",
    "l2_hit_rate",
    "stored_blocks",
    "lossy_blocks",
    "error_percent",
)


def _record_drift(a: JobRecord, b: JobRecord) -> list[str]:
    """Field labels in which two records of the same cell disagree."""
    if a.status != b.status:
        return [f"status {a.status}->{b.status}"]
    if a.result is None or b.result is None:
        return []
    drift = [
        field
        for field in DIFF_COUNTER_FIELDS
        if getattr(a.result, field) != getattr(b.result, field)
    ]
    digest_a = a.result.extra_metrics.get("payload_sha256")
    digest_b = b.result.extra_metrics.get("payload_sha256")
    if digest_a is not None and digest_b is not None and digest_a != digest_b:
        drift.append("payload_sha256")
    if a.result.energy != b.result.energy:
        drift.append("energy")
    return drift


def cmd_diff(args: argparse.Namespace) -> int:
    """``campaign diff``: compare two stores cell-by-cell, nonzero on drift.

    Reports cells missing from either store and cells whose counters or
    payload digests disagree — the check to run after a model change (same
    grid, before/after stores) or between two hosts' sweeps.  A path with
    no results is an error, not an empty store: a typo must not turn the
    drift check into a vacuous pass.
    """
    try:
        store_a = open_store(args.store_a, args.store_backend, must_exist=True)
        store_b = open_store(args.store_b, args.store_backend, must_exist=True)
    except FileNotFoundError as exc:
        _log.error("error: %s", exc)
        return 2
    records_a = {r.job.content_hash: r for r in store_a.records()}
    records_b = {r.job.content_hash: r for r in store_b.records()}

    only_a = [records_a[h] for h in records_a.keys() - records_b.keys()]
    only_b = [records_b[h] for h in records_b.keys() - records_a.keys()]
    changed: list[tuple[JobRecord, list[str]]] = []
    for job_hash in records_a.keys() & records_b.keys():
        drift = _record_drift(records_a[job_hash], records_b[job_hash])
        if drift:
            changed.append((records_a[job_hash], drift))

    for record in sorted(only_a, key=lambda r: r.job.label()):
        print(f"  only in {args.store_a}: {record.job.label()}")
    for record in sorted(only_b, key=lambda r: r.job.label()):
        print(f"  only in {args.store_b}: {record.job.label()}")
    for record, drift in sorted(changed, key=lambda item: item[0].job.label()):
        print(f"  changed {record.job.label()}: {', '.join(drift)}")
    common = len(records_a.keys() & records_b.keys())
    print(
        f"diff: {common} common cells — {len(changed)} changed, "
        f"{len(only_a)} only in A, {len(only_b)} only in B"
    )
    if args.allow_missing:
        # Subset mode: a worker's local store only holds the cells that
        # worker executed, so "missing elsewhere" is expected — the check
        # is that nothing the stores *share* disagrees.
        return 1 if changed else 0
    return 1 if (changed or only_a or only_b) else 0


def cmd_compact(args: argparse.Namespace) -> int:
    """``campaign compact``: rewrite a JSONL store / vacuum a SQLite store."""
    try:
        store = open_store(args.dir, args.store_backend, must_exist=True)
    except FileNotFoundError as exc:
        _log.error("error: %s", exc)
        return 2
    kept, dropped = store.compact()
    print(
        f"compacted {store.results_path}: kept {kept} records, "
        f"dropped {dropped} stale entries"
    )
    return 0


def cmd_trace_export(args: argparse.Namespace) -> int:
    """``trace export``: capture a registry workload into an interchange file."""
    from repro.workloads.registry import get_workload
    from repro.workloads.traceio import capture_trace, save_trace

    kwargs: dict = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    try:
        workload = get_workload(args.workload, **kwargs)
    except KeyError as exc:
        _log.error("error: %s", exc.args[0] if exc.args else exc)
        return 2
    bundle = capture_trace(workload)
    path = save_trace(args.out, bundle)
    accesses = len(bundle.trace)
    print(
        f"captured {bundle.name}: {len(bundle.regions)} regions, "
        f"{accesses} trace entries @ {bundle.block_size_bytes} B blocks "
        f"-> {path}"
    )
    return 0


def cmd_trace_ingest(args: argparse.Namespace) -> int:
    """``trace ingest``: replay an interchange file through the simulator."""
    from repro.campaign.worker import build_backend
    from repro.gpu.config import GPUConfig
    from repro.gpu.simulator import GPUSimulator
    from repro.workloads.traceio import load_trace

    try:
        workload = load_trace(args.path, seed=args.seed)
    except (FileNotFoundError, ValueError) as exc:
        _log.error("error: %s", exc)
        return 2
    config = GPUConfig()
    try:
        backend = build_backend(
            args.scheme.upper(),
            config,
            lossy_threshold_bytes=args.threshold,
            mag_bytes=args.mag,
        )
    except KeyError as exc:
        _log.error("error: %s", exc.args[0] if exc.args else exc)
        return 2
    simulator = GPUSimulator(config=config, payload_digest=True)
    result = simulator.run(workload, backend, compute_error=not args.no_error)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"replayed {workload.name} under {args.scheme.upper()}:")
    print(f"  exec_time_s    {result.exec_time_s:.6f}")
    print(f"  total_bursts   {result.total_bursts}")
    print(f"  dram_bytes     {result.dram_bytes}")
    print(f"  l2_hit_rate    {result.l2_hit_rate:.4f}")
    print(f"  stored_blocks  {result.stored_blocks}")
    print(f"  lossy_blocks   {result.lossy_blocks}")
    for key in sorted(result.extra_metrics):
        value = result.extra_metrics[key]
        if isinstance(value, float):
            print(f"  {key:<14} {value:.6g}")
        else:
            print(f"  {key:<14} {value}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    """``trace info``: describe an interchange file without simulating."""
    from repro.workloads.traceio import load_bundle

    try:
        bundle = load_bundle(args.path)
    except (FileNotFoundError, ValueError) as exc:
        _log.error("error: %s", exc)
        return 2
    print(f"{bundle.name}: block size {bundle.block_size_bytes} B, "
          f"{len(bundle.trace)} trace entries")
    for region in bundle.regions:
        flags = []
        if region.approximable:
            flags.append("approximable")
        flags.append("output" if region.is_output else "input")
        print(
            f"  {region.name}: {region.array.dtype} "
            f"{'x'.join(str(d) for d in region.array.shape)} "
            f"({', '.join(flags)})"
        )
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    """``version``: print the package version."""
    print(__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLC reproduction toolkit (Lal/Lucas/Juurlink, DATE'19)",
    )
    parser.add_argument(
        "--log-level",
        choices=tuple(LOG_LEVELS),
        default="info",
        help="logging verbosity for progress/diagnostic lines (default: info)",
    )
    parser.add_argument(
        "-q",
        dest="log_quiet",
        action="store_true",
        help="shorthand for --log-level warning (mute progress lines)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    version = sub.add_parser("version", help="print the package version")
    version.set_defaults(func=cmd_version)

    campaign = sub.add_parser("campaign", help="run and inspect simulation sweeps")
    campaign_sub = campaign.add_subparsers(dest="subcommand", required=True)

    def add_grid_options(parser: argparse.ArgumentParser) -> None:
        """Grid axes + observability flags shared by ``run`` and ``serve``."""
        parser.add_argument(
            "--dir", required=True, help="campaign directory (spec + results)"
        )
        parser.add_argument("--name", default="campaign", help="campaign name")
        parser.add_argument(
            "--workloads",
            default=",".join(PAPER_WORKLOAD_ORDER),
            help="comma-separated benchmarks (default: all nine, paper order)",
        )
        parser.add_argument(
            "--schemes",
            default=",".join(PAPER_SCHEMES),
            help="comma-separated schemes (default: E2MC + all TSLC variants)",
        )
        parser.add_argument(
            "--thresholds", default="16",
            help="comma-separated lossy thresholds in bytes",
        )
        parser.add_argument(
            "--mags",
            default="config",
            help="comma-separated MAGs in bytes, or 'config' for the GPU default",
        )
        parser.add_argument(
            "--scale", type=float, default=None,
            help="workload input scale (default: native)",
        )
        parser.add_argument("--seeds", default="2019", help="comma-separated RNG seeds")
        parser.add_argument(
            "--no-error",
            action="store_true",
            help="skip re-running kernels on degraded inputs (timing-only sweep)",
        )
        parser.add_argument(
            "--job-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-job wall-clock cap; a wedged job becomes a captured "
            "error record instead of stalling the campaign (default: none)",
        )
        parser.add_argument(
            "--chunk-accesses",
            type=int,
            default=None,
            metavar="N",
            help="replay the compiled trace in bounded windows of at most N "
            "entries, threading cache/controller state across windows — "
            "bit-identical results under bounded memory (default: one pass)",
        )
        parser.add_argument(
            "--quiet", action="store_true", help="suppress per-job progress"
        )
        parser.add_argument(
            "--trace",
            default=None,
            metavar="OUT.json",
            help="collect per-phase spans and write a Chrome trace-event file",
        )
        parser.add_argument(
            "--metrics",
            action="store_true",
            help="collect counters/histograms per job and print the aggregate",
        )
        _add_store_backend(parser)

    run = campaign_sub.add_parser(
        "run", help="expand a parameter grid and simulate every missing cell"
    )
    add_grid_options(run)
    run.add_argument("--workers", type=int, default=1, help="worker process count")
    run.set_defaults(func=cmd_run)

    serve = campaign_sub.add_parser(
        "serve",
        help="coordinate the grid as a lease-based work queue for remote "
        "'campaign worker' processes",
    )
    add_grid_options(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks an ephemeral one (default: 8765)",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="lease lifetime without a heartbeat before a job is re-queued",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="total attempts (expiries + failures) before a job is recorded "
        "as failed",
    )
    serve.add_argument(
        "--quarantine-strikes", type=int, default=3,
        help="expired/failed jobs before a worker is quarantined",
    )
    serve.add_argument(
        "--grace", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait without live workers before degrading to the "
        "in-process pool",
    )
    serve.add_argument(
        "--fallback-workers", type=int, default=1,
        help="in-process pool size for the degraded path; 0 waits for remote "
        "workers forever",
    )
    serve.set_defaults(func=cmd_serve)

    worker = campaign_sub.add_parser(
        "worker", help="join a 'campaign serve' coordinator and execute leased jobs"
    )
    worker.add_argument(
        "--url", required=True, help="coordinator endpoint (http://host:port)"
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: hostname-pid)",
    )
    worker.add_argument(
        "--dir", default=None,
        help="optional local store mirroring every record this worker "
        "executed (checkable via 'campaign diff --allow-missing')",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="delay between lease polls while the queue is empty",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long without work (default: stay until done)",
    )
    worker.add_argument(
        "--chunk-accesses",
        type=int,
        default=None,
        metavar="N",
        help="bounded-memory replay window for jobs this worker executes "
        "(same semantics as 'campaign run --chunk-accesses')",
    )
    _add_store_backend(worker)
    worker.set_defaults(func=cmd_worker)

    status = campaign_sub.add_parser(
        "status", help="compare the saved spec against results on disk"
    )
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--metrics",
        action="store_true",
        help="also aggregate and print the stored records' metric snapshots",
    )
    _add_store_backend(status)
    status.set_defaults(func=cmd_status)

    export = campaign_sub.add_parser("export", help="flatten stored results to CSV")
    export.add_argument("--dir", required=True, help="campaign directory")
    export.add_argument("--csv", default="-", help="output path, or '-' for stdout")
    _add_store_backend(export)
    export.set_defaults(func=cmd_export)

    diff = campaign_sub.add_parser(
        "diff", help="compare two result stores cell-by-cell (nonzero on drift)"
    )
    diff.add_argument("store_a", help="first store (campaign dir or .sqlite file)")
    diff.add_argument("store_b", help="second store (campaign dir or .sqlite file)")
    diff.add_argument(
        "--allow-missing",
        action="store_true",
        help="only count cells both stores hold (subset check, e.g. a "
        "worker's local store vs the coordinator's)",
    )
    _add_store_backend(diff)
    diff.set_defaults(func=cmd_diff)

    compact = campaign_sub.add_parser(
        "compact", help="drop stale JSONL lines / vacuum a SQLite store"
    )
    compact.add_argument("--dir", required=True, help="campaign directory")
    _add_store_backend(compact)
    compact.set_defaults(func=cmd_compact)

    trace = sub.add_parser(
        "trace", help="export, inspect and replay address/data trace files"
    )
    trace_sub = trace.add_subparsers(dest="subcommand", required=True)

    trace_export = trace_sub.add_parser(
        "export", help="capture a registry workload into a .npz interchange file"
    )
    trace_export.add_argument(
        "--workload", required=True, help="registry workload to capture"
    )
    trace_export.add_argument(
        "--scale", type=float, default=None,
        help="workload input scale (default: native)",
    )
    trace_export.add_argument("--seed", type=int, default=2019, help="RNG seed")
    trace_export.add_argument(
        "--out", required=True, help="output path (.npz appended when missing)"
    )
    trace_export.set_defaults(func=cmd_trace_export)

    trace_ingest = trace_sub.add_parser(
        "ingest",
        help="replay an interchange file through the vectorized engine",
    )
    trace_ingest.add_argument("path", help="trace interchange file (.npz)")
    trace_ingest.add_argument(
        "--scheme", default="TSLC-OPT",
        help="compression scheme to replay under (default: TSLC-OPT)",
    )
    trace_ingest.add_argument(
        "--mag", type=int, default=None,
        help="memory access granularity in bytes (default: GPU config)",
    )
    trace_ingest.add_argument(
        "--threshold", type=int, default=16,
        help="SLC lossy threshold in bytes (default: 16)",
    )
    trace_ingest.add_argument(
        "--seed", type=int, default=2019, help="RNG seed (degradation path)"
    )
    trace_ingest.add_argument(
        "--no-error",
        action="store_true",
        help="skip the degraded-data pass (timing-only replay)",
    )
    trace_ingest.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    trace_ingest.set_defaults(func=cmd_trace_ingest)

    trace_info = trace_sub.add_parser(
        "info", help="describe an interchange file without simulating"
    )
    trace_info.add_argument("path", help="trace interchange file (.npz)")
    trace_info.set_defaults(func=cmd_trace_info)

    add_study_parser(sub)
    add_bench_parser(sub)

    return parser


def _add_store_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-backend",
        choices=STORE_BACKENDS,
        default=None,
        help="force the result-store backend (default: inferred from the path)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (console script ``repro`` / ``python -m repro``)."""
    args = build_parser().parse_args(argv)
    setup_logging("warning" if args.log_quiet else args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
