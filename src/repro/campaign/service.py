"""The ``repro campaign serve`` coordinator: a work-queue over loopback/LAN.

One coordinator process owns the campaign: it expands the grid, serves
cached cells from the result store, parks the remainder in a
:class:`~repro.campaign.queue.LeaseQueue`, and exposes a tiny JSON-over-HTTP
protocol (stdlib ``http.server``, zero new dependencies) that
``repro campaign worker`` processes drive::

    POST /join       {worker_id, host, pid}        -> lease timings + obs state
    POST /lease      {worker_id, max_jobs}         -> {state, jobs: [...]}
    POST /heartbeat  {worker_id}                   -> {ok, renewed}
    POST /complete   {worker_id, record}           -> {accepted, final}
    POST /leave      {worker_id}                   -> {ok}
    GET  /status                                   -> queue counts + stats

The wire format is exactly the job/record dict format the stores persist,
so a record that crosses the network is byte-identical to one produced
in-process — which is what lets ``campaign diff`` verify a distributed run
against a single-process run bit for bit.

Failure handling lives in the queue (lease expiry, strikes, quarantine);
the service layer adds graceful degradation: if no worker shows up (or all
of them die) within the grace period, the coordinator falls back to the
in-process ``ProcessPoolExecutor`` path for whatever is left, so a
campaign started as distributed always completes.

:class:`CampaignService` is transport-free (``handle(method, path,
payload)``), so the protocol is unit-testable without sockets; the HTTP
handler is a thin shim over it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro.obs as obs
from repro.campaign import faults
from repro.campaign.executor import (
    CampaignResult,
    ProgressFn,
    make_collector,
    run_jobs,
    serve_cached,
)
from repro.campaign.queue import LeaseQueue
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.store import ResultStore
from repro.obs import metrics, tracing
from repro.obs.log import get_logger

_log = get_logger("campaign.serve")


class CampaignService:
    """Transport-free protocol logic behind the coordinator endpoints."""

    def __init__(self, queue: LeaseQueue,
                 injector: faults.FaultInjector | None = None) -> None:
        self.queue = queue
        self._faults = injector if injector is not None else faults.active()

    def handle(self, method: str, path: str, payload: dict) -> tuple[int, dict]:
        """Route one request; returns ``(http_status, response_dict)``."""
        try:
            if method == "GET" and path == "/status":
                return 200, self.queue.counts()
            if method != "POST":
                return 405, {"error": f"method {method} not allowed"}
            handler = {
                "/join": self._join,
                "/lease": self._lease,
                "/heartbeat": self._heartbeat,
                "/complete": self._complete,
                "/leave": self._leave,
            }.get(path)
            if handler is None:
                return 404, {"error": f"unknown endpoint {path}"}
            worker_id = payload.get("worker_id")
            if not worker_id:
                return 400, {"error": "worker_id is required"}
            return handler(str(worker_id), payload)
        except Exception as exc:  # never kill the server thread on a bad request
            _log.exception("coordinator error handling %s %s", method, path)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _join(self, worker_id: str, payload: dict) -> tuple[int, dict]:
        meta = {k: payload[k] for k in ("host", "pid") if k in payload}
        self.queue.register(worker_id, meta)
        return 200, {
            "ok": True,
            "state": self.queue.state,
            "lease_timeout_s": self.queue.lease_timeout_s,
            # workers renew well inside the lease window
            "heartbeat_s": self.queue.lease_timeout_s / 3.0,
            # workers mirror the coordinator's tracing/metrics switches so
            # their spans/snapshots ride back on every record
            "obs": obs.state(),
        }

    def _lease(self, worker_id: str, payload: dict) -> tuple[int, dict]:
        jobs = self.queue.lease(worker_id, int(payload.get("max_jobs", 1)))
        info = next((w for w in self.queue.workers()
                     if w.worker_id == worker_id), None)
        return 200, {
            "state": self.queue.state,
            "quarantined": bool(info is not None and info.quarantined),
            "jobs": [job.to_dict() for job in jobs],
            "lease_timeout_s": self.queue.lease_timeout_s,
        }

    def _heartbeat(self, worker_id: str, payload: dict) -> tuple[int, dict]:
        result = self.queue.heartbeat(worker_id)
        result["state"] = self.queue.state
        return 200, result

    def _complete(self, worker_id: str, payload: dict) -> tuple[int, dict]:
        if self._faults.fire(faults.DROP_RESPONSE):
            # fault injection: the acknowledgment is lost in transit — the
            # worker must retry and the retry must be idempotent
            _log.warning("fault: dropping /complete response from %s", worker_id)
            return 503, {"error": "injected drop-response fault"}
        record = payload.get("record")
        if not isinstance(record, dict):
            return 400, {"error": "record is required"}
        result = self.queue.complete(worker_id, record)
        result["state"] = self.queue.state
        return 200, result

    def _leave(self, worker_id: str, payload: dict) -> tuple[int, dict]:
        requeued = self.queue.release(worker_id)
        return 200, {"ok": True, "requeued": requeued}


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`CampaignService.handle`."""

    server: "CampaignHTTPServer"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            payload = json.loads(body) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("payload must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._respond(400, {"error": f"bad request body: {exc}"})
            return
        status, response = self.server.service.handle(method, self.path, payload)
        self._respond(status, response)

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def log_message(self, format: str, *args) -> None:
        # route http.server's access lines through the repro logger so -q
        # and --log-level govern them like everything else
        _log.debug("%s %s", self.address_string(), format % args)


class CampaignHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying a :class:`CampaignService` reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: CampaignService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class CampaignCoordinator:
    """Owns one distributed campaign from cache pass to final record.

    Construction performs the store cache pass and builds the lease queue;
    :meth:`start` binds the HTTP endpoint (``port=0`` picks an ephemeral
    port, readable via :attr:`port` — how tests avoid collisions); and
    :meth:`serve` blocks until every cell has a record, persisting results
    as they stream in from workers.

    Args:
        jobs: expanded campaign jobs (deduplicated here by content hash).
        spec: the campaign spec the jobs came from (kept on the result).
        store: shared result store; cached cells are served before any
            lease is granted, making worker retries free for finished work.
        host/port: bind address of the coordinator endpoint.
        lease_timeout_s: lease lifetime without a heartbeat.
        max_attempts: attempts before a job is finalized as an error.
        quarantine_strikes: strikes before a worker is quarantined.
        job_timeout: hard cap on one lease's total lifetime (heartbeats
            renew but never extend past it) *and* the per-job timeout of
            the in-process fallback path.
        grace_s: how long to wait with work outstanding but no live worker
            before degrading to the in-process pool.
        fallback_workers: process count for the degraded path; 0 disables
            fallback (the coordinator then waits for workers forever).
        progress: the usual campaign progress callback.
        poll_s: serve-loop tick (lease expiry sweep + record drain).
        linger_s: after the last cell completes, keep the endpoint up this
            long (at most) so polling workers observe ``state: "done"`` and
            exit immediately, instead of burning their whole transport-retry
            budget against a vanished coordinator.  Workers that already
            left, are quarantined, or have gone silent past the lease
            window are not waited for.
    """

    def __init__(
        self,
        jobs: list[Job],
        spec: CampaignSpec | None = None,
        store: ResultStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        quarantine_strikes: int = 3,
        job_timeout: float | None = None,
        grace_s: float = 30.0,
        fallback_workers: int = 1,
        progress: ProgressFn | None = None,
        poll_s: float = 0.1,
        linger_s: float = 5.0,
        injector: faults.FaultInjector | None = None,
    ) -> None:
        self.outcome = CampaignResult(
            spec=spec, jobs=list({j.content_hash: j for j in jobs}.values())
        )
        self._store = store
        self._progress = progress
        self._collect = make_collector(self.outcome, store, progress)
        pending = serve_cached(self.outcome, store, progress)
        self.queue = LeaseQueue(
            pending,
            lease_timeout_s=lease_timeout_s,
            max_attempts=max_attempts,
            quarantine_strikes=quarantine_strikes,
            max_lease_s=job_timeout,
        )
        self.service = CampaignService(self.queue, injector=injector)
        self._host = host
        self._requested_port = port
        self._grace_s = float(grace_s)
        self._fallback_workers = int(fallback_workers)
        self._job_timeout = job_timeout
        self._poll_s = float(poll_s)
        self._linger_s = float(linger_s)
        self._server: CampaignHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.fell_back = False

    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (call after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("coordinator not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The coordinator endpoint workers should connect to."""
        return f"http://{self._host}:{self.port}"

    def start(self) -> "CampaignCoordinator":
        """Bind the endpoint and start serving requests in a thread."""
        self._server = CampaignHTTPServer(
            (self._host, self._requested_port), self.service
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="campaign-coordinator",
            daemon=True,
        )
        self._thread.start()
        _log.info("campaign coordinator listening on %s (%d jobs pending, "
                  "%d cached)", self.url, len(self.queue.remaining_jobs()),
                  self.outcome.n_cached)
        return self

    def stop(self) -> None:
        """Shut the HTTP endpoint down (idempotent)."""
        self.queue.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ #

    def serve(self) -> CampaignResult:
        """Block until every cell has a record; returns the outcome.

        The loop sweeps expired leases, drains finished records into the
        store, and watches worker liveness: with work outstanding, no
        fresh cached/leased activity for ``grace_s`` triggers the
        in-process fallback (when enabled).
        """
        outcome = self.outcome
        try:
            with tracing.span("campaign.serve", cat="campaign",
                              jobs=outcome.n_total):
                started = time.monotonic()
                while not self.queue.finished():
                    self.queue.expire()
                    for record in self.queue.drain_done():
                        self._collect(record)
                    if self._should_fall_back(started):
                        break
                    time.sleep(self._poll_s)
                for record in self.queue.drain_done():
                    self._collect(record)
                if not self.queue.finished() and self._fallback_workers > 0:
                    self._run_fallback()
                self._await_goodbyes()
        except KeyboardInterrupt:
            outcome.interrupted = True
            _log.warning("coordinator interrupted — %d of %d cells stored",
                         len(outcome.records), outcome.n_total)
        finally:
            self.stop()
        outcome.queue_stats = dict(self.queue.stats)
        if metrics.enabled():
            metrics.inc("campaign.jobs", outcome.n_total)
            metrics.inc("campaign.cache_hits", outcome.n_cached)
            metrics.inc("campaign.executed", outcome.n_executed)
            metrics.inc("campaign.failed", outcome.n_failed)
        return outcome

    def _await_goodbyes(self) -> None:
        """Give polling workers a beat to see ``done`` and leave cleanly.

        Without this, a worker whose lease poll lands just after the HTTP
        endpoint closes spends its entire transport-retry backoff budget
        discovering the campaign is over.  Dead workers don't stall the
        wind-down: anyone silent past the lease window is skipped.
        """
        self.queue.close()
        deadline = time.monotonic() + self._linger_s
        while time.monotonic() < deadline:
            now = time.monotonic()
            if all(
                info.left or info.quarantined
                or now - info.last_seen > self.queue.lease_timeout_s
                for info in self.queue.workers()
            ):
                return
            time.sleep(self._poll_s)

    def _should_fall_back(self, started: float) -> bool:
        if self._fallback_workers <= 0:
            return False
        if self.queue.active_workers(self._grace_s):
            return False
        # no live worker within the grace horizon; also require the grace
        # period itself to have elapsed so a slow first join isn't punished
        if time.monotonic() - started < self._grace_s:
            return False
        return not self.queue.finished()

    def _run_fallback(self) -> None:
        """Degrade to the in-process pool for everything still unfinished."""
        self.fell_back = True
        remaining = self.queue.remaining_jobs()
        self.queue.close()  # late workers are told "done" and exit
        _log.warning(
            "no live workers within %.0fs grace — running %d remaining "
            "job(s) on the in-process pool (%d workers)",
            self._grace_s, len(remaining), self._fallback_workers,
        )
        if metrics.enabled():
            metrics.inc("campaign.fallback", len(remaining))
        outcome = self.outcome

        def relay(record, done, total):
            # re-emit with campaign-level counts: the sub-run only knows
            # about the remaining jobs
            if self._progress is not None:
                self._progress(record, len(outcome.records), outcome.n_total)

        sub = run_jobs(
            None,
            remaining,
            store=self._store,
            workers=self._fallback_workers,
            progress=relay,
            job_timeout=self._job_timeout,
        )
        outcome.records.update(sub.records)
        outcome.interrupted = outcome.interrupted or sub.interrupted


def serve_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    **kwargs,
) -> CampaignResult:
    """Expand a spec and run it as a distributed campaign (blocking).

    Convenience wrapper over :class:`CampaignCoordinator` for callers that
    don't need the endpoint before serving (e.g. workers are already
    pointed at a well-known host:port).  Keyword arguments are forwarded
    to the coordinator.
    """
    coordinator = CampaignCoordinator(spec.expand(), spec=spec, store=store,
                                      **kwargs)
    coordinator.start()
    return coordinator.serve()
