"""Campaign orchestration: declarative, parallel, cacheable simulation sweeps.

The experiment grids of the paper (workload × scheme × MAG × threshold ×
seed) are expressed as a :class:`CampaignSpec`, expanded into
content-addressed :class:`Job` descriptions, executed in parallel worker
processes by :func:`run_campaign`, and persisted in a :class:`ResultStore`
keyed by job hash — so re-running a figure only simulates cells that have
never been computed.  The ``repro`` CLI (``python -m repro``) drives the
same engine from the command line.

Campaigns also run distributed: :func:`serve_campaign` (CLI: ``repro
campaign serve``) coordinates the same jobs over a lease-based work queue
(:class:`LeaseQueue`) that remote :func:`run_worker` processes (``repro
campaign worker``) drain, surviving worker death via lease expiry +
idempotent re-execution, with per-worker quarantine and graceful fallback
to the in-process pool.  :mod:`repro.campaign.faults` injects
deterministic failures for the robustness test suite.
"""

from repro.campaign import faults
from repro.campaign.executor import CampaignResult, run_campaign, run_jobs
from repro.campaign.queue import Lease, LeaseQueue, WorkerInfo
from repro.campaign.remote import (
    CoordinatorClient,
    CoordinatorUnreachable,
    WorkerSummary,
    run_worker,
)
from repro.campaign.service import (
    CampaignCoordinator,
    CampaignService,
    serve_campaign,
)
from repro.campaign.spec import (
    BASELINE_SCHEME,
    KNOWN_SCHEMES,
    LOSSLESS_SCHEMES,
    PAPER_SCHEMES,
    SCHEME_VARIANTS,
    CampaignSpec,
    Job,
    config_to_overrides,
    expand_specs,
    overrides_to_config,
)
from repro.campaign.store import (
    STORE_BACKENDS,
    JobRecord,
    JSONLResultStore,
    ResultStore,
    SQLiteResultStore,
    open_store,
)
from repro.campaign.worker import build_backend, execute_job, simulate_job

__all__ = [
    "faults",
    "Lease",
    "LeaseQueue",
    "WorkerInfo",
    "CampaignCoordinator",
    "CampaignService",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "WorkerSummary",
    "serve_campaign",
    "run_worker",
    "BASELINE_SCHEME",
    "KNOWN_SCHEMES",
    "LOSSLESS_SCHEMES",
    "PAPER_SCHEMES",
    "SCHEME_VARIANTS",
    "STORE_BACKENDS",
    "CampaignSpec",
    "Job",
    "JobRecord",
    "CampaignResult",
    "ResultStore",
    "JSONLResultStore",
    "SQLiteResultStore",
    "open_store",
    "run_campaign",
    "run_jobs",
    "expand_specs",
    "build_backend",
    "execute_job",
    "simulate_job",
    "config_to_overrides",
    "overrides_to_config",
]
