"""Campaign orchestration: declarative, parallel, cacheable simulation sweeps.

The experiment grids of the paper (workload × scheme × MAG × threshold ×
seed) are expressed as a :class:`CampaignSpec`, expanded into
content-addressed :class:`Job` descriptions, executed in parallel worker
processes by :func:`run_campaign`, and persisted in a :class:`ResultStore`
keyed by job hash — so re-running a figure only simulates cells that have
never been computed.  The ``repro`` CLI (``python -m repro``) drives the
same engine from the command line.
"""

from repro.campaign.executor import CampaignResult, run_campaign, run_jobs
from repro.campaign.spec import (
    BASELINE_SCHEME,
    KNOWN_SCHEMES,
    LOSSLESS_SCHEMES,
    PAPER_SCHEMES,
    SCHEME_VARIANTS,
    CampaignSpec,
    Job,
    config_to_overrides,
    expand_specs,
    overrides_to_config,
)
from repro.campaign.store import (
    STORE_BACKENDS,
    JobRecord,
    JSONLResultStore,
    ResultStore,
    SQLiteResultStore,
    open_store,
)
from repro.campaign.worker import build_backend, execute_job, simulate_job

__all__ = [
    "BASELINE_SCHEME",
    "KNOWN_SCHEMES",
    "LOSSLESS_SCHEMES",
    "PAPER_SCHEMES",
    "SCHEME_VARIANTS",
    "STORE_BACKENDS",
    "CampaignSpec",
    "Job",
    "JobRecord",
    "CampaignResult",
    "ResultStore",
    "JSONLResultStore",
    "SQLiteResultStore",
    "open_store",
    "run_campaign",
    "run_jobs",
    "expand_specs",
    "build_backend",
    "execute_job",
    "simulate_job",
    "config_to_overrides",
    "overrides_to_config",
]
