"""Declarative campaign specifications and content-addressed jobs.

A campaign is a parameter grid — workloads × compression schemes × MAG ×
lossy threshold × scale × seed (× GPU config overrides) — that expands into
a deterministic list of :class:`Job` descriptions.  Every job carries a
stable content hash over its parameters, which is the key the result store
uses: two campaigns that share grid cells share cached results, and
re-running an identical campaign re-runs nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.config import SLCVariant
from repro.gpu.config import GPUConfig, LatencyConfig
from repro.workloads.registry import (
    EXTENDED_WORKLOAD_ORDER,
    PAPER_WORKLOAD_ORDER,
    available_workloads,
)

#: the paper's nine benchmarks — the default grid of every paper study
PAPER_WORKLOADS = PAPER_WORKLOAD_ORDER

#: the extended families beyond the paper (scientific fields, DNN tensors)
EXTENDED_WORKLOADS = EXTENDED_WORKLOAD_ORDER

#: every built-in workload: paper taxonomy first, then the extensions
ALL_WORKLOADS = (*PAPER_WORKLOADS, *EXTENDED_WORKLOADS)

#: scheme label of the E2MC lossless baseline
BASELINE_SCHEME = "E2MC"

#: TSLC scheme labels mapped to their :class:`SLCVariant`, in plotting order
SCHEME_VARIANTS = {
    "TSLC-SIMP": SLCVariant.SIMP,
    "TSLC-PRED": SLCVariant.PRED,
    "TSLC-OPT": SLCVariant.OPT,
}

#: purely lossless schemes (beyond the E2MC baseline) that jobs may carry —
#: these dispatch through :class:`~repro.gpu.backends.LosslessBackend` and the
#: compression registry, with no lossy threshold and no application error
LOSSLESS_SCHEMES = ("BDI", "FPC", "CPACK", "BPC")

#: the schemes the paper itself sweeps (baseline first) — the default grid
PAPER_SCHEMES = (BASELINE_SCHEME, *SCHEME_VARIANTS)

#: every scheme label a job may carry
KNOWN_SCHEMES = (*PAPER_SCHEMES, *LOSSLESS_SCHEMES)

#: bumped whenever job execution semantics change, so stale cached results
#: from an older engine are never mistaken for current ones
JOB_FORMAT_VERSION = 1

#: flat override tuple: sorted ("field", value) pairs; latency fields are
#: spelled "latency.<field>"
Overrides = tuple[tuple[str, object], ...]


def config_to_overrides(config: GPUConfig | None) -> Overrides:
    """Diff ``config`` against the Table II defaults into a flat override tuple.

    The tuple is hashable and JSON-friendly, so jobs stay content-addressable
    and picklable even when they carry a customized GPU configuration.
    """
    if config is None:
        return ()
    overrides: dict[str, object] = {}
    default = GPUConfig()
    for f in dataclasses.fields(GPUConfig):
        if f.name == "latency":
            continue
        value = getattr(config, f.name)
        if value != getattr(default, f.name):
            overrides[f.name] = value
    default_latency = LatencyConfig()
    for f in dataclasses.fields(LatencyConfig):
        value = getattr(config.latency, f.name)
        if value != getattr(default_latency, f.name):
            overrides[f"latency.{f.name}"] = value
    return tuple(sorted(overrides.items()))


def overrides_to_config(overrides: Overrides | Mapping[str, object]) -> GPUConfig:
    """Rebuild a :class:`GPUConfig` from :func:`config_to_overrides` output."""
    items = dict(overrides if isinstance(overrides, Mapping) else dict(overrides))
    latency_items = {
        key.split(".", 1)[1]: value
        for key, value in items.items()
        if key.startswith("latency.")
    }
    plain_items = {
        key: value for key, value in items.items() if not key.startswith("latency.")
    }
    latency = replace(LatencyConfig(), **latency_items)
    return replace(GPUConfig(), latency=latency, **plain_items)


@dataclass(frozen=True)
class Job:
    """One grid cell: simulate ``workload`` under ``scheme`` with these knobs.

    Jobs are frozen, hashable and fully described by JSON scalars, so they
    can cross process boundaries and be rebuilt from the result store.
    """

    workload: str
    scheme: str
    lossy_threshold_bytes: int = 16
    mag_bytes: int | None = None
    scale: float | None = None
    seed: int = 2019
    compute_error: bool = True
    config_overrides: Overrides = ()

    def __post_init__(self) -> None:
        # Normalize case and numeric types at the hash boundary: "bs"/"BS"
        # and scale=1 vs. 1.0 must address the same cache entry (canonical
        # JSON spells 1 and 1.0 differently, and from_dict coerces types,
        # so unnormalized jobs would change hash across the worker round
        # trip).
        object.__setattr__(self, "workload", self.workload.upper())
        object.__setattr__(self, "scheme", self.scheme.upper())
        object.__setattr__(self, "lossy_threshold_bytes", int(self.lossy_threshold_bytes))
        if self.mag_bytes is not None:
            object.__setattr__(self, "mag_bytes", int(self.mag_bytes))
        if self.scale is not None:
            object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "compute_error", bool(self.compute_error))
        if self.scheme == BASELINE_SCHEME or self.scheme in LOSSLESS_SCHEMES:
            # Lossless schemes ignore the lossy threshold and have no
            # application error by construction; pin both so every threshold
            # of a sweep addresses the one lossless cell per scheme.
            object.__setattr__(self, "lossy_threshold_bytes", 0)
            object.__setattr__(self, "compute_error", False)

    def to_dict(self) -> dict:
        """The job as a JSON-serializable dict."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "lossy_threshold_bytes": self.lossy_threshold_bytes,
            "mag_bytes": self.mag_bytes,
            "scale": self.scale,
            "seed": self.seed,
            "compute_error": self.compute_error,
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Reconstruct a job produced by :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            scheme=data["scheme"],
            lossy_threshold_bytes=int(data["lossy_threshold_bytes"]),
            mag_bytes=None if data["mag_bytes"] is None else int(data["mag_bytes"]),
            scale=None if data["scale"] is None else float(data["scale"]),
            seed=int(data["seed"]),
            compute_error=bool(data["compute_error"]),
            config_overrides=tuple(sorted(data["config_overrides"].items())),
        )

    @property
    def content_hash(self) -> str:
        """Stable hex digest over the job parameters and engine format."""
        payload = {"format": JOB_FORMAT_VERSION, **self.to_dict()}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier used in progress lines."""
        parts = [self.workload, self.scheme, f"thr{self.lossy_threshold_bytes}"]
        if self.mag_bytes is not None:
            parts.append(f"mag{self.mag_bytes}")
        return "/".join(parts)


@dataclass(frozen=True)
class CampaignSpec:
    """A parameter grid that expands into the cross product of its axes.

    ``expand()`` enumerates jobs deterministically (seed, scale, MAG,
    threshold, workload, scheme — innermost last), so the scheme order of a
    study and the progress order of a sweep are both predictable.
    """

    workloads: tuple[str, ...] = PAPER_WORKLOAD_ORDER
    schemes: tuple[str, ...] = PAPER_SCHEMES
    lossy_thresholds: tuple[int, ...] = (16,)
    mags: tuple[int | None, ...] = (None,)
    scales: tuple[float | None, ...] = (None,)
    seeds: tuple[int, ...] = (2019,)
    compute_error: bool = True
    config_overrides: Overrides = ()
    name: str = "campaign"

    def __post_init__(self) -> None:
        # Validate against the live registry, not a hardcoded list, so the
        # extended families and user-registered workloads (plugins,
        # ingested traces) are first-class grid axes.
        known = {w.upper() for w in available_workloads()}
        for workload in self.workloads:
            if workload.upper() not in known:
                raise KeyError(
                    f"unknown workload {workload!r}; "
                    f"available: {', '.join(available_workloads())}"
                )
        for scheme in self.schemes:
            if scheme.upper() not in KNOWN_SCHEMES:
                raise KeyError(
                    f"unknown scheme {scheme!r}; available: {', '.join(KNOWN_SCHEMES)}"
                )
        if not (self.workloads and self.schemes and self.lossy_thresholds
                and self.mags and self.scales and self.seeds):
            raise ValueError("every campaign axis needs at least one value")

    def expand(self) -> list[Job]:
        """Enumerate the grid as deterministic, unique job descriptions.

        :class:`Job` normalizes baseline cells (the lossless baseline is
        threshold-independent and has no application error), so a threshold
        sweep aliases its baseline across thresholds; the aliased cells are
        deduplicated here, keeping the first occurrence.
        """
        jobs: dict[str, Job] = {}
        for seed in self.seeds:
            for scale in self.scales:
                for mag in self.mags:
                    for threshold in self.lossy_thresholds:
                        for workload in self.workloads:
                            for scheme in self.schemes:
                                job = Job(
                                    workload=workload,
                                    scheme=scheme,
                                    lossy_threshold_bytes=threshold,
                                    mag_bytes=mag,
                                    scale=scale,
                                    seed=seed,
                                    compute_error=self.compute_error,
                                    config_overrides=self.config_overrides,
                                )
                                jobs.setdefault(job.content_hash, job)
        return list(jobs.values())

    def to_dict(self) -> dict:
        """The spec as a JSON-serializable dict (persisted as campaign.json)."""
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "schemes": list(self.schemes),
            "lossy_thresholds": list(self.lossy_thresholds),
            "mags": list(self.mags),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "compute_error": self.compute_error,
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Reconstruct a spec produced by :meth:`to_dict`."""
        return cls(
            name=data.get("name", "campaign"),
            workloads=tuple(data["workloads"]),
            schemes=tuple(data["schemes"]),
            lossy_thresholds=tuple(int(t) for t in data["lossy_thresholds"]),
            mags=tuple(None if m is None else int(m) for m in data["mags"]),
            scales=tuple(None if s is None else float(s) for s in data["scales"]),
            seeds=tuple(int(s) for s in data["seeds"]),
            compute_error=bool(data["compute_error"]),
            config_overrides=tuple(sorted(data["config_overrides"].items())),
        )


def expand_specs(specs: "list[CampaignSpec] | tuple[CampaignSpec, ...]") -> list[Job]:
    """Union of several grids as one deduplicated, deterministic job list.

    A single :class:`CampaignSpec` is a pure cross product; grids whose axes
    are *coupled* — Fig. 9 ties the lossy threshold to the MAG (MAG/2), a
    GPU-scaling sweep ties ``config_overrides`` to the scaling point — are
    expressed as one sub-spec per coupling and expanded here.  Cells shared
    between sub-specs (e.g. a common baseline) run once: deduplication is by
    content hash, keeping the first occurrence.
    """
    jobs: dict[str, Job] = {}
    for spec in specs:
        for job in spec.expand():
            jobs.setdefault(job.content_hash, job)
    return list(jobs.values())
