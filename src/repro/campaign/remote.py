"""``repro campaign worker`` — the remote half of a distributed campaign.

A worker is one process on one host: it joins a coordinator
(:mod:`repro.campaign.service`), leases jobs one at a time, executes them
with the very same :func:`~repro.campaign.worker.execute_job` the
in-process pool uses, and streams the record dicts back.  While a job
runs, a daemon heartbeat thread renews the lease, so a slow-but-alive
worker keeps its claim while a dead or hung one loses it after the lease
window.

Transport robustness lives in :class:`CoordinatorClient`: every call
retries transient failures (connection refused, 5xx, torn responses) with
capped exponential backoff plus deterministic per-worker jitter.  A
coordinator that stays unreachable past the retry budget is treated as
"campaign over" — the worker logs a summary and exits cleanly, which is
what makes worker fleets elastic: they can be started before the
coordinator, killed at will, and pointed at a finished campaign without
any of it being an error.

Fault-injection sites (:mod:`repro.campaign.faults`): the worker SIGKILLs
itself mid-job under ``kill-worker-mid-job`` and silences its heartbeat
under ``stall-heartbeat`` — the two worker-death modes the test suite
drives.
"""

from __future__ import annotations

import json
import os
import random
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

import repro.obs as obs
from repro.campaign import faults
from repro.campaign.store import JobRecord, ResultStore
from repro.campaign.worker import execute_job
from repro.obs import metrics
from repro.obs.log import get_logger

_log = get_logger("campaign.worker")


class CoordinatorUnreachable(RuntimeError):
    """The coordinator stayed unreachable through the whole retry budget."""


class CoordinatorClient:
    """JSON-over-HTTP client with capped exponential backoff and jitter.

    Args:
        url: coordinator base URL (``http://host:port``).
        timeout_s: per-request socket timeout.
        max_tries: attempts per call before :class:`CoordinatorUnreachable`.
        backoff_s: first retry delay; doubles per retry.
        backoff_cap_s: upper bound on any single delay.
        rng: jitter source; seeded per worker id by default, so backoff
            sequences are reproducible and workers don't stampede in sync.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 10.0,
        max_tries: int = 8,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 5.0,
        rng: random.Random | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_tries = int(max_tries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._rng = rng if rng is not None else random.Random()
        self.transport_retries = 0

    def call(self, path: str, payload: dict | None = None,
             max_tries: int | None = None) -> dict:
        """POST ``payload`` to ``path``; retries transient transport errors.

        4xx responses are protocol errors and raise immediately; everything
        else (refused connections, 5xx — including the injected
        ``drop-response`` fault — and torn bodies) is transient and retried
        with capped exponential backoff plus jitter.
        """
        tries = self.max_tries if max_tries is None else max_tries
        body = json.dumps(payload or {}).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=body,
            headers={"Content-Type": "application/json"},
        )
        last_error: Exception | None = None
        for attempt in range(tries):
            if attempt:
                delay = min(self.backoff_cap_s,
                            self.backoff_s * (2 ** (attempt - 1)))
                delay *= 0.5 + self._rng.random()  # jitter in [0.5, 1.5)
                self.transport_retries += 1
                if metrics.enabled():
                    metrics.inc("worker.transport_retries")
                _log.debug("retrying %s in %.2fs (attempt %d/%d): %s",
                           path, delay, attempt + 1, tries, last_error)
                time.sleep(delay)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout_s) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                if exc.code < 500:
                    raise  # protocol bug, not a transient fault
                last_error = exc
            except (urllib.error.URLError, OSError, ValueError) as exc:
                last_error = exc
        raise CoordinatorUnreachable(
            f"coordinator {self.url} unreachable after {tries} tries "
            f"(last error: {last_error})"
        )


class _Heartbeat(threading.Thread):
    """Renews the worker's leases while a job executes.

    The ``stall-heartbeat`` fault silences it permanently — the worker
    keeps executing, its lease expires, and the coordinator re-leases the
    job elsewhere; the eventual duplicate completion is absorbed by the
    queue's idempotency.
    """

    def __init__(self, client: CoordinatorClient, worker_id: str,
                 period_s: float) -> None:
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self._client = client
        self._worker_id = worker_id
        self._period_s = max(0.05, float(period_s))
        # NB: must not be named _stop — Thread.join() calls self._stop()
        self._halt = threading.Event()
        #: set while the worker holds leases worth renewing
        self.active = threading.Event()
        self.stalled = False
        self.quarantined = False

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self._period_s):
            if faults.fire(faults.STALL_HEARTBEAT):
                _log.warning("fault: heartbeat stalled permanently")
                self.stalled = True
            if self.stalled or not self.active.is_set():
                continue
            try:
                reply = self._client.call(
                    "/heartbeat", {"worker_id": self._worker_id}, max_tries=2
                )
                if reply.get("quarantined"):
                    self.quarantined = True
            except (CoordinatorUnreachable, urllib.error.HTTPError):
                # the main loop will hit the same wall and wind down
                pass


@dataclass
class WorkerSummary:
    """What one worker process did over its lifetime."""

    worker_id: str
    executed: int = 0
    failed: int = 0
    leased: int = 0
    duplicates: int = 0
    transport_retries: int = 0
    reason: str = "done"
    #: hashes of the jobs this worker completed (accepted or duplicate)
    job_hashes: list = field(default_factory=list)


def run_worker(
    url: str,
    worker_id: str | None = None,
    store: ResultStore | None = None,
    poll_s: float = 0.5,
    max_idle_s: float | None = None,
    client: CoordinatorClient | None = None,
) -> WorkerSummary:
    """Join a coordinator and execute leased jobs until the campaign is done.

    Args:
        url: coordinator endpoint (``http://host:port``).
        worker_id: stable identity; defaults to ``hostname-pid``.
        store: optional *local* result store every executed record is also
            written to — ``campaign diff --allow-missing`` can then check a
            worker's view for drift against the coordinator's.
        poll_s: delay between lease polls when the queue is empty.
        max_idle_s: exit after this long without being granted a job
            (None: stay until the coordinator reports the campaign done).
        client: injectable transport (tests).
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    client = client or CoordinatorClient(url, rng=random.Random(worker_id))
    summary = WorkerSummary(worker_id=worker_id)
    try:
        joined = client.call("/join", {
            "worker_id": worker_id,
            "host": socket.gethostname(),
            "pid": os.getpid(),
        })
    except CoordinatorUnreachable as exc:
        _log.error("could not join coordinator: %s", exc)
        summary.reason = "unreachable"
        return summary
    # mirror the coordinator's tracing/metrics switches: worker spans and
    # metric snapshots then ride back on every record
    obs.apply_state(joined.get("obs") or {})
    heartbeat = _Heartbeat(client, worker_id,
                           joined.get("heartbeat_s",
                                      joined.get("lease_timeout_s", 30.0) / 3.0))
    heartbeat.start()
    idle_since: float | None = None
    _log.info("worker %s joined %s", worker_id, client.url)
    try:
        while True:
            if heartbeat.quarantined:
                summary.reason = "quarantined"
                break
            try:
                reply = client.call("/lease",
                                    {"worker_id": worker_id, "max_jobs": 1})
            except CoordinatorUnreachable:
                # campaign over (coordinator exited) or network gone — both
                # mean there is nothing useful left to do here
                summary.reason = "coordinator gone"
                break
            if reply.get("quarantined"):
                _log.warning("worker %s quarantined by coordinator, exiting",
                             worker_id)
                summary.reason = "quarantined"
                break
            if reply.get("state") == "done":
                break
            jobs = reply.get("jobs") or []
            if not jobs:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if max_idle_s is not None and now - idle_since >= max_idle_s:
                    summary.reason = "idle"
                    break
                time.sleep(poll_s)
                continue
            idle_since = None
            for job_dict in jobs:
                summary.leased += 1
                heartbeat.active.set()
                if faults.fire(faults.KILL_WORKER_MID_JOB):
                    # the harness's worker-death fault: die exactly the way
                    # an OOM-killed or power-cycled host does — no cleanup,
                    # no goodbye, lease left dangling
                    _log.warning("fault: SIGKILLing worker %s mid-job",
                                 worker_id)
                    os.kill(os.getpid(), signal.SIGKILL)
                record = execute_job(job_dict)
                if store is not None:
                    store.put(JobRecord.from_dict(record))
                try:
                    ack = client.call("/complete", {
                        "worker_id": worker_id, "record": record,
                    })
                except CoordinatorUnreachable:
                    summary.reason = "coordinator gone"
                    heartbeat.active.clear()
                    raise _WindDown
                summary.executed += 1
                summary.job_hashes.append(record["job_hash"])
                if record.get("status") != "ok":
                    summary.failed += 1
                if not ack.get("accepted") and ack.get("final"):
                    summary.duplicates += 1
                heartbeat.active.clear()
    except _WindDown:
        pass
    finally:
        heartbeat.stop()
        summary.transport_retries = client.transport_retries
        try:
            client.call("/leave", {"worker_id": worker_id}, max_tries=1)
        except Exception:
            pass  # best-effort goodbye
    _log.info(
        "worker %s exiting (%s): %d executed, %d failed, %d duplicate, "
        "%d transport retries", worker_id, summary.reason, summary.executed,
        summary.failed, summary.duplicates, summary.transport_retries,
    )
    return summary


class _WindDown(Exception):
    """Internal: unwind the nested job loop when the coordinator vanishes."""
