"""Lease-based work queue: the coordinator's source of distributed truth.

:class:`LeaseQueue` hands content-hashed campaign jobs to remote workers
under *leases* — time-bounded claims that the worker renews by heartbeat
while it executes.  The failure model falls out of three rules:

1. **Expiry means re-execution.**  A lease whose deadline passes (worker
   died, hung, or partitioned away) goes back on the queue and is handed
   to the next worker that asks.  Because jobs are deterministic and the
   result store is content-addressed, re-execution is idempotent: whichever
   completion arrives first wins, later duplicates are acknowledged and
   discarded, and the store ends up with exactly one record per cell.
2. **Failures strike the worker, not just the job.**  Every expired lease
   and every error record a worker returns is a *strike*; a worker that
   accumulates ``quarantine_strikes`` is quarantined — its outstanding
   leases are re-queued and it is refused further work — so one bad host
   (broken NumPy install, failing disk) cannot eat a whole campaign.
3. **Nothing retries forever.**  A job that keeps failing or expiring is
   finalized as an error record after ``max_attempts`` total attempts, so a
   poison cell degrades into one captured failure instead of livelock.

The queue is transport-agnostic and fully synchronous: every method takes
the lock, the clock is injectable, and nothing here knows about HTTP — the
deterministic surface the fault-injection and property tests drive.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from threading import RLock
from typing import Callable

from repro.campaign.spec import Job
from repro.obs import metrics
from repro.obs.log import get_logger

_log = get_logger("campaign.queue")

#: queue stats counters, all always-on (plain dict increments)
STAT_KEYS = (
    "leases_granted",
    "leases_expired",
    "retries",
    "errors_retried",
    "errors_final",
    "expiries_final",
    "completions",
    "duplicates",
    "workers_joined",
    "workers_left",
    "workers_quarantined",
)


@dataclass
class Lease:
    """One outstanding claim: ``worker_id`` is running ``job_hash``."""

    job_hash: str
    worker_id: str
    granted_at: float
    deadline: float
    attempt: int


@dataclass
class WorkerInfo:
    """Everything the queue tracks about one worker."""

    worker_id: str
    meta: dict = field(default_factory=dict)
    last_seen: float = 0.0
    strikes: int = 0
    quarantined: bool = False
    #: said a clean goodbye via ``release`` — the coordinator need not wait
    #: for this worker when winding down
    left: bool = False
    completed: int = 0
    failed: int = 0


class LeaseQueue:
    """Thread-safe lease queue over a fixed set of unique jobs.

    Args:
        jobs: the pending jobs (already deduplicated by content hash).
        lease_timeout_s: how long a lease lives without a heartbeat.
        max_attempts: total attempts (expiries + error returns) before a
            job is finalized as an error record.
        quarantine_strikes: strikes before a worker is quarantined.
        max_lease_s: optional cap on a lease's *total* lifetime — heartbeats
            renew the deadline but never past ``granted_at + max_lease_s``,
            so a wedged-but-heartbeating worker still loses the job.
        clock: monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        jobs: list[Job],
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        quarantine_strikes: int = 3,
        max_lease_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if quarantine_strikes < 1:
            raise ValueError("quarantine_strikes must be >= 1")
        self.lease_timeout_s = float(lease_timeout_s)
        self.max_attempts = int(max_attempts)
        self.quarantine_strikes = int(quarantine_strikes)
        self.max_lease_s = None if max_lease_s is None else float(max_lease_s)
        self._clock = clock
        self._lock = RLock()
        self._jobs: dict[str, Job] = {job.content_hash: job for job in jobs}
        self._pending: deque[str] = deque(self._jobs)
        self._leases: dict[str, Lease] = {}
        self._attempts: dict[str, int] = {}
        self._done: dict[str, dict] = {}
        self._fresh: deque[dict] = deque()
        self._workers: dict[str, WorkerInfo] = {}
        self._closed = False
        self.stats: dict[str, int] = {key: 0 for key in STAT_KEYS}

    # ------------------------------------------------------------------ #
    # worker lifecycle

    def register(self, worker_id: str, meta: dict | None = None) -> WorkerInfo:
        """Record (or refresh) a worker; called on join and implicitly on use."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                info = WorkerInfo(worker_id=worker_id, meta=dict(meta or {}))
                self._workers[worker_id] = info
                self.stats["workers_joined"] += 1
                _log.info("worker %s joined (%d workers)", worker_id,
                          len(self._workers))
            elif meta:
                info.meta.update(meta)
            info.last_seen = self._clock()
            return info

    def release(self, worker_id: str) -> int:
        """A worker leaves cleanly: re-queue its leases; returns how many."""
        with self._lock:
            requeued = self._requeue_worker(worker_id, reason="left")
            info = self._workers.get(worker_id)
            if info is not None and not info.left:
                info.left = True
                self.stats["workers_left"] += 1
            return requeued

    def _strike(self, worker_id: str) -> None:
        info = self._workers.get(worker_id)
        if info is None or info.quarantined:
            return
        info.strikes += 1
        if info.strikes >= self.quarantine_strikes:
            info.quarantined = True
            self.stats["workers_quarantined"] += 1
            if metrics.enabled():
                metrics.inc("campaign.worker.quarantined")
            requeued = self._requeue_worker(worker_id, reason="quarantined")
            _log.warning(
                "worker %s quarantined after %d strikes (%d leases re-queued)",
                worker_id, info.strikes, requeued,
            )

    def _requeue_worker(self, worker_id: str, reason: str) -> int:
        requeued = 0
        for job_hash in [h for h, l in self._leases.items()
                         if l.worker_id == worker_id]:
            del self._leases[job_hash]
            self._requeue(job_hash)
            requeued += 1
        if requeued:
            _log.info("re-queued %d lease(s) of worker %s (%s)",
                      requeued, worker_id, reason)
        return requeued

    # ------------------------------------------------------------------ #
    # the lease protocol

    def lease(self, worker_id: str, max_jobs: int = 1,
              meta: dict | None = None) -> list[Job]:
        """Grant up to ``max_jobs`` pending jobs to ``worker_id``."""
        with self._lock:
            info = self.register(worker_id, meta)
            if info.quarantined or self._closed:
                return []
            now = self._clock()
            granted: list[Job] = []
            while self._pending and len(granted) < max(1, max_jobs):
                job_hash = self._pending.popleft()
                if job_hash in self._done:
                    # a stale completion (e.g. after this job's lease expired
                    # and it was re-queued) already finished it — don't hand
                    # a done job to another worker
                    continue
                attempt = self._attempts.get(job_hash, 0) + 1
                self._leases[job_hash] = Lease(
                    job_hash=job_hash,
                    worker_id=worker_id,
                    granted_at=now,
                    deadline=now + self.lease_timeout_s,
                    attempt=attempt,
                )
                granted.append(self._jobs[job_hash])
            if granted:
                self.stats["leases_granted"] += len(granted)
                if metrics.enabled():
                    metrics.inc("campaign.lease.granted", len(granted))
            return granted

    def heartbeat(self, worker_id: str) -> dict:
        """Renew every lease of ``worker_id``; returns its standing."""
        with self._lock:
            info = self.register(worker_id)
            if info.quarantined:
                return {"ok": False, "quarantined": True, "renewed": 0}
            now = self._clock()
            renewed = 0
            for lease in self._leases.values():
                if lease.worker_id != worker_id:
                    continue
                deadline = now + self.lease_timeout_s
                if self.max_lease_s is not None:
                    # a heartbeat never extends a lease past its hard cap,
                    # so a wedged-but-alive worker still gets evicted
                    deadline = min(deadline, lease.granted_at + self.max_lease_s)
                lease.deadline = deadline
                renewed += 1
            return {"ok": True, "quarantined": False, "renewed": renewed}

    def complete(self, worker_id: str, record: dict) -> dict:
        """Accept one finished-job record dict (idempotent).

        Returns ``{"accepted": bool, "final": bool}``: ``accepted`` means
        the record became the job's result; ``final`` means the job needs
        no further execution (also True for duplicates of a done job).
        An error record below the attempt cap is rejected and the job
        re-queued for another worker.
        """
        with self._lock:
            info = self.register(worker_id)
            job_hash = record.get("job_hash")
            if job_hash not in self._jobs:
                return {"accepted": False, "final": False, "unknown": True}
            if job_hash in self._done:
                # idempotent re-execution: someone else already finished it
                self.stats["duplicates"] += 1
                if metrics.enabled():
                    metrics.inc("campaign.complete.duplicate")
                return {"accepted": False, "final": True}
            lease = self._leases.pop(job_hash, None)
            if lease is not None:
                self._attempts[job_hash] = lease.attempt
            attempts = self._attempts.setdefault(job_hash, 1)
            if record.get("status") == "ok":
                self._finish(job_hash, record, info, ok=True)
                return {"accepted": True, "final": True}
            info.failed += 1
            self._strike(worker_id)
            if attempts >= self.max_attempts:
                self.stats["errors_final"] += 1
                self._finish(job_hash, record, info, ok=False)
                return {"accepted": True, "final": True}
            self.stats["errors_retried"] += 1
            self._requeue(job_hash)
            _log.warning(
                "job %s failed on worker %s (attempt %d/%d), re-queued",
                self._jobs[job_hash].label(), worker_id, attempts,
                self.max_attempts,
            )
            return {"accepted": False, "final": False}

    def _finish(self, job_hash: str, record: dict, info: WorkerInfo,
                ok: bool) -> None:
        self._done[job_hash] = record
        self._fresh.append(record)
        self.stats["completions"] += 1
        if ok:
            info.completed += 1
        if metrics.enabled():
            metrics.inc("campaign.complete.accepted")

    def _requeue(self, job_hash: str) -> None:
        # retries jump the line: freeing a straggler cell early keeps the
        # campaign's tail short
        self._pending.appendleft(job_hash)
        self.stats["retries"] += 1
        if metrics.enabled():
            metrics.inc("campaign.job.retried")

    def expire(self, now: float | None = None) -> list[str]:
        """Re-queue every lease past its deadline; returns the job hashes.

        A job that has already burned ``max_attempts`` leases is finalized
        as a synthesized error record instead — a poison cell (or a cell
        that kills every worker it touches) must converge, not livelock.
        """
        with self._lock:
            now = self._clock() if now is None else now
            expired = [h for h, lease in self._leases.items()
                       if lease.deadline <= now]
            for job_hash in expired:
                lease = self._leases.pop(job_hash, None)
                if lease is None:
                    # already re-queued as a side effect of an earlier strike
                    # in this very sweep quarantining its worker
                    continue
                self._attempts[job_hash] = lease.attempt
                self.stats["leases_expired"] += 1
                if metrics.enabled():
                    metrics.inc("campaign.lease.expired")
                self._strike(lease.worker_id)
                job = self._jobs[job_hash]
                if lease.attempt >= self.max_attempts:
                    self.stats["expiries_final"] += 1
                    info = self.register(lease.worker_id)
                    self._finish(
                        job_hash,
                        _expiry_record(job, lease, self.max_attempts),
                        info,
                        ok=False,
                    )
                    _log.error(
                        "job %s: lease expired on attempt %d/%d — recording "
                        "as failed", job.label(), lease.attempt,
                        self.max_attempts,
                    )
                else:
                    self._requeue(job_hash)
                    _log.warning(
                        "lease on %s (worker %s) expired, re-queued "
                        "(attempt %d/%d)", job.label(), lease.worker_id,
                        lease.attempt, self.max_attempts,
                    )
            return expired

    # ------------------------------------------------------------------ #
    # coordinator-side consumption

    def drain_done(self) -> list[dict]:
        """Record dicts finalized since the last drain (each exactly once)."""
        with self._lock:
            fresh = list(self._fresh)
            self._fresh.clear()
            return fresh

    def finished(self) -> bool:
        """Whether every job has a final record."""
        with self._lock:
            return len(self._done) == len(self._jobs)

    def close(self) -> None:
        """Stop granting leases; ``state`` becomes ``"done"`` for workers."""
        with self._lock:
            self._closed = True

    @property
    def state(self) -> str:
        """``"active"`` while jobs remain, ``"done"`` once finished/closed."""
        with self._lock:
            return "done" if (self._closed or self.finished()) else "active"

    def active_workers(self, horizon_s: float, now: float | None = None) -> int:
        """Workers seen within ``horizon_s`` that are not quarantined."""
        with self._lock:
            now = self._clock() if now is None else now
            return sum(
                1
                for info in self._workers.values()
                if not info.quarantined and now - info.last_seen <= horizon_s
            )

    def workers(self) -> list[WorkerInfo]:
        """Snapshot of every worker the queue has seen."""
        with self._lock:
            return list(self._workers.values())

    def counts(self) -> dict:
        """Queue occupancy + stats snapshot (the ``/status`` payload)."""
        with self._lock:
            return {
                "total": len(self._jobs),
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._done),
                "workers": len(self._workers),
                "state": "done" if (self._closed or
                                    len(self._done) == len(self._jobs))
                else "active",
                "stats": dict(self.stats),
            }

    def remaining_jobs(self) -> list[Job]:
        """Jobs without a final record (pending *and* currently leased)."""
        with self._lock:
            return [job for h, job in self._jobs.items() if h not in self._done]


def _expiry_record(job: Job, lease: Lease, max_attempts: int) -> dict:
    """Synthesized error record for a job whose leases kept expiring."""
    return {
        "job_hash": job.content_hash,
        "job": job.to_dict(),
        "status": "error",
        "result": None,
        "error": (
            f"lease expired on attempt {lease.attempt}/{max_attempts} "
            f"(last worker: {lease.worker_id}); job abandoned after "
            f"repeated worker death or hang"
        ),
        "elapsed_s": 0.0,
        "provenance": {"coordinator": True, "last_worker": lease.worker_id},
    }
